package sim

// Method models: each of the paper's methods (Fig. 4) plus NR, expressed as
// closed-loop threads over the simulated machine. A model performs the same
// cache-line traffic pattern as the real algorithm — which lock lines it
// touches, which slots it scans, which log entries it reads across the
// interconnect — while the sequential work of the wrapped data structure is
// charged as compute time plus line accesses described by a Profile.

// Profile describes the data structure being made concurrent, in simulator
// terms (§8.2's parameters generalize all the real structures).
type Profile struct {
	// NLines is the structure's size in cache lines (parameter n).
	NLines int
	// UpdateCLines is the number of lines an update touches, including the
	// contended line 0 (parameter c).
	UpdateCLines int
	// ReadCLines is the number of lines a read touches (1 for findMin).
	ReadCLines int
	// UpdateNs / ReadNs are the sequential compute costs beyond line traffic.
	UpdateNs, ReadNs uint64
	// UpdateHotPermille / ReadHotPermille are the fractions of updates and
	// reads whose access path concentrates on the structure's hot set
	// (≈383 for zipf(1.5) keys; 1000 for findMin/deleteMin on a priority
	// queue; 0 for uniform keys). They drive CAS contention in the
	// lock-free model and invalidation traffic everywhere else.
	UpdateHotPermille int
	ReadHotPermille   int
	// HotLines is the size of the hot set in cache lines: 1-2 for a stack
	// top or priority-queue head, ~8 for a zipfian key neighbourhood.
	// Zero means 1.
	HotLines int
	// HotPathLines is how many of a hot operation's line accesses land in
	// the hot set (the tail of the search path); the remainder spread over
	// the whole structure. Zero means the entire access path is hot.
	HotPathLines int
	// LFWriteLines is how many path lines a successful lock-free update
	// writes beyond its linearizing CAS (tower link/unlink traffic).
	// Zero means 2.
	LFWriteLines int
}

func (p Profile) lfWriteLines() int {
	if p.LFWriteLines <= 0 {
		return 2
	}
	return p.LFWriteLines
}

// hotSet returns the profile's hot-set size.
func (p Profile) hotSet() uint64 {
	if p.HotLines < 1 {
		return 1
	}
	return uint64(p.HotLines)
}

// Run describes one benchmark execution.
type Run struct {
	Threads        int
	OpsPerThread   int
	UpdatePermille int
	// ExternalWorkNs is the cache-polluting work between operations
	// (parameter e, converted to nanoseconds).
	ExternalWorkNs uint64
}

// Result is the outcome of a simulated run.
type Result struct {
	Ops     uint64
	Nanos   uint64
	FailCAS uint64
}

// OpsPerUs returns throughput in operations per microsecond, the paper's
// reported unit.
func (r Result) OpsPerUs() float64 {
	if r.Nanos == 0 {
		return 0
	}
	return float64(r.Ops) * 1000 / float64(r.Nanos)
}

// opPick decides the next op kind and whether it targets the hot set.
func opPick(t *Thread, p Profile, updatePermille int) (update, hot bool) {
	update = int(t.Rand()%1000) < updatePermille
	permille := p.ReadHotPermille
	if update {
		permille = p.UpdateHotPermille
	}
	hot = permille > 0 && int(t.Rand()%1000) < permille
	return update, hot
}

// pickLine chooses the k-th line of an operation's access path: hot
// operations land their first HotPathLines accesses in the hot set (which
// updates keep invalidating) and the rest across the whole structure.
func pickLine(t *Thread, p Profile, hot bool, k int) Addr {
	if hot && (p.HotPathLines == 0 || k <= p.HotPathLines) {
		return Addr(t.Rand() % p.hotSet())
	}
	return Addr(1 + t.Rand()%uint64(max(p.NLines-1, 1)))
}

// computeCost returns the sequential-work cost: operations on hot keys run
// on cache-resident data and cost half (the locality effect §8.1.3 credits
// for NR under contention — it applies to any method's sequential work).
func computeCost(ns uint64, hot bool) uint64 {
	if hot {
		return ns / 2
	}
	return ns
}

// applyShared performs one operation's line traffic on a shared structure
// whose lines start at base (line 0 is the contended entry).
func applyShared(s *Sim, t *Thread, base Addr, p Profile, update, hot bool) {
	if update {
		s.Write(t, base, 1)
		for k := 1; k < p.UpdateCLines; k++ {
			s.Write(t, base+pickLine(t, p, hot, k), 1)
		}
		s.Compute(t, computeCost(p.UpdateNs, hot))
	} else {
		s.Read(t, base)
		for k := 1; k < p.ReadCLines; k++ {
			s.Read(t, base+pickLine(t, p, hot, k))
		}
		s.Compute(t, computeCost(p.ReadNs, hot))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// hotFor draws the hot flag for an operation executed on another thread's
// behalf (combiners), matching the poster's distribution.
func hotFor(t *Thread, p Profile, update bool) bool {
	permille := p.ReadHotPermille
	if update {
		permille = p.UpdateHotPermille
	}
	return permille > 0 && int(t.Rand()%1000) < permille
}

// think models external work between operations.
func think(s *Sim, t *Thread, r Run) {
	if r.ExternalWorkNs > 0 {
		s.Compute(t, r.ExternalWorkNs)
	}
}

// --- SL: one big spinlock -------------------------------------------------

// RunSL simulates the SL baseline.
func RunSL(s *Sim, p Profile, r Run) Result {
	base := s.Alloc(p.NLines)
	lock := NewSpinLock(s)
	bodies := make([]func(*Thread), r.Threads)
	for i := range bodies {
		bodies[i] = func(t *Thread) {
			for n := 0; n < r.OpsPerThread; n++ {
				think(s, t, r)
				update, hot := opPick(t, p, r.UpdatePermille)
				lock.Lock(s, t)
				applyShared(s, t, base, p, update, hot)
				lock.Unlock(s, t)
				t.Ops++
			}
		}
	}
	total := s.Run(bodies)
	return Result{Ops: uint64(r.Threads * r.OpsPerThread), Nanos: total}
}

// --- RWL: one big readers-writer lock --------------------------------------

// RunRWL simulates the RWL baseline (distributed readers-writer lock, as in
// the paper).
func RunRWL(s *Sim, p Profile, r Run) Result {
	base := s.Alloc(p.NLines)
	lock := NewDistRWLock(s, r.Threads)
	bodies := make([]func(*Thread), r.Threads)
	for i := range bodies {
		slot := i
		bodies[i] = func(t *Thread) {
			for n := 0; n < r.OpsPerThread; n++ {
				think(s, t, r)
				update, hot := opPick(t, p, r.UpdatePermille)
				if update {
					lock.Lock(s, t)
					applyShared(s, t, base, p, true, hot)
					lock.Unlock(s, t)
				} else {
					lock.RLock(s, t, slot)
					applyShared(s, t, base, p, false, hot)
					lock.RUnlock(s, t, slot)
				}
				t.Ops++
			}
		}
	}
	total := s.Run(bodies)
	return Result{Ops: uint64(r.Threads * r.OpsPerThread), Nanos: total}
}

// --- FC / FC+: flat combining ----------------------------------------------

// fc slot states.
const (
	fcsEmpty uint64 = iota
	fcsPostedUpdate
	fcsPostedRead
	fcsDone
)

// RunFC simulates flat combining; plus=true adds FC+'s readers-writer lock
// so reads bypass the combiner.
func RunFC(s *Sim, p Profile, r Run, plus bool) Result {
	base := s.Alloc(p.NLines)
	lock := NewSpinLock(s)
	var rw DistRWLock
	if plus {
		rw = NewDistRWLock(s, r.Threads)
	}
	slots := make([]Addr, r.Threads)
	for i := range slots {
		slots[i] = s.Alloc(1)
	}
	combineRound := func(t *Thread) {
		if plus {
			rw.Lock(s, t)
		}
		for _, sl := range slots {
			v := s.Read(t, sl) // the global combiner scans every thread's slot
			if v == fcsPostedUpdate || v == fcsPostedRead {
				hot := hotFor(t, p, v == fcsPostedUpdate)
				applyShared(s, t, base, p, v == fcsPostedUpdate, hot)
				s.Write(t, sl, fcsDone)
			}
		}
		if plus {
			rw.Unlock(s, t)
		}
	}
	bodies := make([]func(*Thread), r.Threads)
	for i := range bodies {
		idx := i
		bodies[i] = func(t *Thread) {
			mySlot := slots[idx]
			for n := 0; n < r.OpsPerThread; n++ {
				think(s, t, r)
				update, hot := opPick(t, p, r.UpdatePermille)
				if plus && !update {
					rw.RLock(s, t, idx)
					applyShared(s, t, base, p, false, hot)
					rw.RUnlock(s, t, idx)
					t.Ops++
					continue
				}
				post := fcsPostedUpdate
				if !update {
					post = fcsPostedRead
				}
				s.Write(t, mySlot, post)
				for {
					if s.Read(t, mySlot) == fcsDone {
						s.Write(t, mySlot, fcsEmpty)
						break
					}
					if lock.TryLock(s, t) {
						if s.Read(t, mySlot) != fcsDone {
							combineRound(t)
						}
						lock.Unlock(s, t)
						s.Write(t, mySlot, fcsEmpty)
						break
					}
					s.WaitUntil(t, lock.Line(), func(v uint64) bool { return v == 0 })
				}
				t.Ops++
			}
		}
	}
	total := s.Run(bodies)
	return Result{Ops: uint64(r.Threads * r.OpsPerThread), Nanos: total}
}

// --- LF: lock-free ----------------------------------------------------------

// RunLF simulates a lock-free structure: reads traverse without locks;
// updates read a target line's version and CAS it, retrying the whole
// operation on failure (the failed-CAS storm of §8.1.3 under zipf keys).
func RunLF(s *Sim, p Profile, r Run) Result {
	base := s.Alloc(p.NLines)
	var failTally [64]uint64
	bodies := make([]func(*Thread), r.Threads)
	for i := range bodies {
		idx := i
		bodies[i] = func(t *Thread) {
			for n := 0; n < r.OpsPerThread; n++ {
				think(s, t, r)
				update, hot := opPick(t, p, r.UpdatePermille)
				target := pickLine(t, p, hot, 1)
				// Every search starts at the structure's entry point (head /
				// top levels), which hot updates keep invalidating.
				if !update {
					s.Read(t, base)
					s.Read(t, base+target)
					for k := 2; k < p.ReadCLines; k++ {
						s.Read(t, base+pickLine(t, p, hot, k))
					}
					s.Compute(t, computeCost(p.ReadNs, hot))
					t.Ops++
					continue
				}
				// The search runs once from the entry point; a failed CAS
				// retries from the failure neighbourhood (one extra path
				// read per attempt), as lock-free deleteMin/insert do.
				s.Read(t, base)
				for k := 2; k < p.UpdateCLines; k++ {
					s.Read(t, base+pickLine(t, p, hot, k))
				}
				s.Compute(t, computeCost(p.UpdateNs, hot))
				for {
					v := s.Read(t, base+target)
					if s.CAS(t, base+target, v, v+1) {
						// Link/unlink the remaining levels: a skip-list
						// insert or delete writes several path lines.
						for k := 0; k < p.lfWriteLines(); k++ {
							s.Write(t, base+pickLine(t, p, hot, k+2), 1)
						}
						break
					}
					failTally[idx%64]++
					s.Read(t, base+pickLine(t, p, hot, 2))
				}
				t.Ops++
			}
		}
	}
	total := s.Run(bodies)
	var fails uint64
	for _, f := range failTally {
		fails += f
	}
	return Result{Ops: uint64(r.Threads * r.OpsPerThread), Nanos: total, FailCAS: fails}
}

// --- NA: NUMA-aware elimination stack ---------------------------------------

// naExchangerSlots is the size of each node's elimination array.
const naExchangerSlots = 8

// RunNA simulates the elimination stack: a fraction of operations eliminate
// against a same-node partner through the node's elimination array (two
// node-local accesses on one of several exchanger lines); the rest CAS the
// central stack's top line. With balanced push/pop traffic and many threads
// the elimination array absorbs most operations [17, 32].
func RunNA(s *Sim, p Profile, r Run, eliminatePermille int) Result {
	top := s.Alloc(1)
	exch := make([]Addr, s.topo.Nodes())
	for i := range exch {
		exch[i] = s.Alloc(naExchangerSlots)
	}
	bodies := make([]func(*Thread), r.Threads)
	for i := range bodies {
		bodies[i] = func(t *Thread) {
			for n := 0; n < r.OpsPerThread; n++ {
				think(s, t, r)
				if int(t.Rand()%1000) < eliminatePermille && r.Threads > 1 {
					// Exchange within the node: offer + take.
					slot := exch[t.Node] + Addr(t.Rand()%naExchangerSlots)
					s.Write(t, slot, t.Rand())
					s.Read(t, slot)
					s.Compute(t, p.UpdateNs)
				} else {
					// Central Treiber stack. Hardware arbitration hands the
					// line to one winner per transfer, so the sustained rate
					// of a CAS loop equals the line-transfer rate; model it
					// as one serialized read-modify-write.
					s.Add(t, top, 1)
					s.Compute(t, p.UpdateNs)
				}
				t.Ops++
			}
		}
	}
	total := s.Run(bodies)
	return Result{Ops: uint64(r.Threads * r.OpsPerThread), Nanos: total}
}

// --- NR: node replication ----------------------------------------------------

// NROpts carries the ablation switches (Fig. 13) into the NR model.
type NROpts struct {
	DisableCombining      bool // #1
	ReadWaitLogTail       bool // #2
	CombinedReplicaLock   bool // #3
	SerialReplicaUpdate   bool // #4
	CentralizedReaderLock bool // #5
}

// nr slot states.
const (
	nrsEmpty uint64 = iota
	nrsPosted
	nrsDone
)

const nrLogRing = 1 << 14

// RunNR simulates Node Replication with the given ablation options.
func RunNR(s *Sim, p Profile, r Run, o NROpts) Result {
	nodes := s.topo.Nodes()
	tpn := s.topo.ThreadsPerNode()

	logTail := s.Alloc(1)
	completed := s.Alloc(1)
	ring := s.Alloc(nrLogRing)

	replica := make([]Addr, nodes)
	localTail := make([]Addr, nodes)
	combiner := make([]SpinLock, nodes)
	refresher := make([]SpinLock, nodes)
	rw := make([]RWLock, nodes)
	slotOf := make([][]Addr, nodes)
	for n := 0; n < nodes; n++ {
		replica[n] = s.Alloc(p.NLines)
		localTail[n] = s.Alloc(1)
		combiner[n] = NewSpinLock(s)
		refresher[n] = NewSpinLock(s)
		if o.CentralizedReaderLock {
			rw[n] = NewCentralRWLock(s)
		} else {
			l := NewDistRWLock(s, tpn)
			rw[n] = &l
		}
		slotOf[n] = make([]Addr, tpn)
		for k := range slotOf[n] {
			slotOf[n][k] = s.Alloc(1)
		}
	}

	applyReplica := func(t *Thread, node int, update bool) {
		applyShared(s, t, replica[node], p, update, hotFor(t, p, update))
	}

	// replayTo replays log entries [lt, to) into node's replica, waiting out
	// holes, and returns the new local tail.
	replayTo := func(t *Thread, node int, lt, to uint64) uint64 {
		for idx := lt; idx < to; idx++ {
			a := ring + Addr(idx%nrLogRing)
			// Replay is a sequential scan over the log: prefetched, not a
			// demand miss per entry. Slot values are absolute indices, so a
			// value beyond ours means the ring lapped us — the entry was
			// written (and overwritten); only a smaller value is a hole.
			want := idx + 1
			if s.ReadStream(t, a) < want {
				s.WaitUntil(t, a, func(v uint64) bool { return v >= want })
			}
			applyReplica(t, node, true)
		}
		if to > lt {
			s.Write(t, localTail[node], to)
			return to
		}
		return lt
	}

	runCombine := func(t *Thread, node int, myIdx int) {
		// Scan the node's slots for posted operations (§5.2).
		var batch []Addr
		for _, sl := range slotOf[node][:nodeThreads(r.Threads, node, tpn)] {
			if s.Read(t, sl) == nrsPosted {
				batch = append(batch, sl)
			}
		}
		if len(batch) == 0 {
			return
		}
		// Reserve entries with a CAS on logTail (§5.1).
		var start uint64
		for {
			cur := s.Read(t, logTail)
			if s.CAS(t, logTail, cur, cur+uint64(len(batch))) {
				start = cur
				break
			}
		}
		end := start + uint64(len(batch))
		for k := range batch {
			s.Write(t, ring+Addr((start+uint64(k))%nrLogRing), start+uint64(k)+1)
		}
		if o.SerialReplicaUpdate {
			// Ablation #4: replicas update in series.
			if s.Read(t, completed) < start {
				s.WaitUntil(t, completed, func(v uint64) bool { return v >= start })
			}
		}
		if !o.CombinedReplicaLock {
			rw[node].Lock(s, t)
		}
		lt := s.Read(t, localTail[node])
		replayTo(t, node, lt, start)
		s.Write(t, localTail[node], end)
		for {
			c := s.Read(t, completed)
			if c >= end || s.CAS(t, completed, c, end) {
				break
			}
		}
		// Execute the batch from the node-local slots (§5.2).
		for _, sl := range batch {
			applyReplica(t, node, true)
			s.Write(t, sl, nrsDone)
		}
		if !o.CombinedReplicaLock {
			rw[node].Unlock(s, t)
		}
	}

	update := func(t *Thread, myIdx int) {
		node := t.Node
		if o.DisableCombining {
			// Ablation #1: every thread appends and replays for itself.
			var start uint64
			for {
				cur := s.Read(t, logTail)
				if s.CAS(t, logTail, cur, cur+1) {
					start = cur
					break
				}
			}
			s.Write(t, ring+Addr(start%nrLogRing), start+1)
			rw[node].Lock(s, t)
			lt := s.Read(t, localTail[node])
			replayTo(t, node, lt, start+1)
			for {
				c := s.Read(t, completed)
				if c >= start+1 || s.CAS(t, completed, c, start+1) {
					break
				}
			}
			rw[node].Unlock(s, t)
			return
		}
		mySlot := slotOf[node][myIdx]
		s.Write(t, mySlot, nrsPosted)
		for {
			if s.Read(t, mySlot) == nrsDone {
				s.Write(t, mySlot, nrsEmpty)
				return
			}
			if combiner[node].TryLock(s, t) {
				if s.Read(t, mySlot) != nrsDone {
					runCombine(t, node, myIdx)
				}
				combiner[node].Unlock(s, t)
				s.Write(t, mySlot, nrsEmpty)
				return
			}
			s.WaitUntil(t, combiner[node].Line(), func(v uint64) bool { return v == 0 })
		}
	}

	read := func(t *Thread, myIdx int) {
		node := t.Node
		var rt uint64
		if o.ReadWaitLogTail {
			rt = s.Read(t, logTail) // ablation #2
		} else {
			rt = s.Read(t, completed)
		}
		if o.CombinedReplicaLock {
			// Ablation #3: readers take the combiner lock.
			combiner[node].Lock(s, t)
			lt := s.Read(t, localTail[node])
			if lt < rt {
				replayTo(t, node, lt, rt)
			}
			applyReplica(t, node, false)
			combiner[node].Unlock(s, t)
			return
		}
		for {
			lt := s.Read(t, localTail[node])
			if lt >= rt {
				break
			}
			if combiner[node].Held(s, t) {
				// A combiner exists; wait for it to move on (§5.3).
				s.WaitUntil(t, combiner[node].Line(), func(v uint64) bool { return v == 0 })
				continue
			}
			// Elect one reader to refresh; the rest wait for localTail,
			// matching internal/core's refresher optimization.
			if !refresher[node].TryLock(s, t) {
				// Park until the current refresher finishes, then re-check.
				s.WaitUntil(t, refresher[node].Line(), func(v uint64) bool { return v == 0 })
				continue
			}
			rw[node].Lock(s, t)
			lt = s.Read(t, localTail[node])
			target := rt
			if to := s.Read(t, completed); to > target {
				target = to // refresh as far as possible so waiters are served
			}
			if lt < target {
				replayTo(t, node, lt, target)
			}
			rw[node].Unlock(s, t)
			refresher[node].Unlock(s, t)
		}
		rw[node].RLock(s, t, myIdx)
		applyReplica(t, node, false)
		rw[node].RUnlock(s, t, myIdx)
	}

	bodies := make([]func(*Thread), r.Threads)
	for i := range bodies {
		myIdx := i % tpn
		bodies[i] = func(t *Thread) {
			for n := 0; n < r.OpsPerThread; n++ {
				think(s, t, r)
				isUpdate, _ := opPick(t, p, r.UpdatePermille)
				if isUpdate {
					update(t, myIdx)
				} else {
					read(t, myIdx)
				}
				t.Ops++
			}
		}
	}
	total := s.Run(bodies)
	return Result{Ops: uint64(r.Threads * r.OpsPerThread), Nanos: total}
}

// nodeThreads returns how many of the run's threads sit on node under the
// fill placement.
func nodeThreads(total, node, tpn int) int {
	lo := node * tpn
	if total <= lo {
		return 0
	}
	if total >= lo+tpn {
		return tpn
	}
	return total - lo
}
