// Package sim is a deterministic discrete-event simulator of a NUMA machine,
// built so the paper's 112-thread evaluation can be reproduced on any host.
// This is the substitution for the authors' 4-socket Xeon testbed: what the
// figures measure is the relative cost of intra- versus inter-node cache-line
// movement under each synchronization method, and that is exactly what this
// engine models.
//
// Threads are goroutines driven one at a time by a virtual-time scheduler
// (a single control token moves between them), so execution is sequential
// and deterministic while the algorithm models stay ordinary imperative
// code. Shared memory is a set of cache lines with MESI-flavoured state
// (owner node + sharer set); every Read/Write/CAS charges virtual
// nanoseconds according to whether the line is node-local or must cross the
// interconnect. Blocking primitives park threads on a line and wake them on
// stores, so spinning costs model time, not host time.
package sim

import (
	"container/heap"
	"fmt"

	"github.com/asplos17/nr/internal/topology"
)

// CostModel holds the virtual-time costs in nanoseconds.
type CostModel struct {
	// SameCore is an access to a line this core already owns (L1/L2 hit).
	SameCore uint64
	// SameNode is an access served within the node (shared L3, cross-core
	// coherence inside one socket).
	SameNode uint64
	// Remote is an access that crosses the interconnect.
	Remote uint64
	// Stream is the amortized cost of a prefetched sequential remote read
	// (log replay); it neither pays full demand latency nor serializes.
	Stream uint64
	// CASExtra is the additional cost of an atomic read-modify-write.
	CASExtra uint64
	// Mem is the cost of a DRAM access on an L3 capacity miss.
	Mem uint64
	// L3Lines is the per-node last-level cache capacity in cache lines;
	// when the allocated working set exceeds it, that fraction of would-be
	// cache hits pays Mem instead (the §8.2.3 size cliff). Zero disables
	// capacity modelling.
	L3Lines int
	// DirectoryMissPermille, when nonzero, models an incomplete cache
	// directory (the paper's AMD machine, §8.4): that fraction of node-local
	// accesses still pays the remote cost because the coherence protocol
	// broadcasts off-node.
	DirectoryMissPermille uint64
}

// IntelCosts approximates the paper's 4×14×2 Xeon (§8): a few ns in the
// core's own cache, ~25ns within a socket's L3, ~100ns across QPI.
func IntelCosts() CostModel {
	// 35 MB shared L3 per socket / 64-byte lines ≈ 573K lines.
	return CostModel{SameCore: 4, SameNode: 25, Remote: 100, Stream: 30, CASExtra: 15,
		Mem: 90, L3Lines: 573000}
}

// AMDCosts approximates the paper's 8×6 Magny-Cours (§8.4): slower overall
// and with an incomplete directory that leaks node-local traffic off-node.
func AMDCosts() CostModel {
	// 10 MB L3 per socket ≈ 163K lines.
	return CostModel{SameCore: 6, SameNode: 40, Remote: 130, Stream: 45, CASExtra: 20,
		Mem: 110, L3Lines: 163000, DirectoryMissPermille: 350}
}

// Addr names one simulated cache line.
type Addr int32

// line is one cache line: a 64-bit payload plus coherence state. Ownership
// is tracked at core granularity, sharing at node granularity.
type line struct {
	val       uint64
	ownerCore int32  // core holding the line in modified state; -1 = clean
	ownerNode int16  // node of ownerCore; -1 = clean
	sharers   uint32 // bitmask of nodes with a shared copy
	// availableAt serializes ownership transfers: a contended line is a
	// serial resource — at most one transfer can be in flight — which is
	// what makes hot CAS lines a system-wide bottleneck on real machines.
	availableAt uint64
}

// waiter is a thread parked on a line until pred holds.
type waiter struct {
	t    *Thread
	pred func(uint64) bool
}

// Thread is one simulated hardware thread. Model code receives a *Thread
// and calls the Sim methods with it; a Thread must only be used from the
// function the scheduler started it in.
type Thread struct {
	ID    int
	Node  int
	Core  int // physical core (SMT siblings share one)
	clock uint64
	sim   *Sim

	resume  chan struct{}
	heapIdx int // position in the ready heap, -1 if not queued
	Ops     uint64
	rng     uint64
}

// Clock returns the thread's virtual time in nanoseconds.
func (t *Thread) Clock() uint64 { return t.clock }

// Rand returns a deterministic per-thread pseudo-random value.
func (t *Thread) Rand() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng * 0x2545f4914f6cdd1d
}

// Sim is the machine: memory, scheduler, and cost model.
type Sim struct {
	topo    topology.Topology
	cost    CostModel
	lines   []line
	ready   readyHeap
	threads []*Thread
	waiters map[Addr][]waiter
	alive   int
	done    chan struct{}
	missRng uint64
	fault   any // panic payload from a model, rethrown in Run

	capMissPermille uint64 // computed from L3Lines vs allocated lines
}

// New returns a simulator for the given machine.
func New(topo topology.Topology, cost CostModel) *Sim {
	return &Sim{
		topo:    topo,
		cost:    cost,
		waiters: make(map[Addr][]waiter),
		done:    make(chan struct{}),
		missRng: 0x9e3779b97f4a7c15,
	}
}

// Topology returns the simulated machine shape.
func (s *Sim) Topology() topology.Topology { return s.topo }

// Alloc reserves n fresh cache lines and returns the first address.
// Call before Run.
func (s *Sim) Alloc(n int) Addr {
	base := len(s.lines)
	for i := 0; i < n; i++ {
		s.lines = append(s.lines, line{ownerCore: -1, ownerNode: -1})
	}
	return Addr(base)
}

// Run starts one goroutine per body under the fill placement and drives
// them in virtual-time order until all return. It returns the largest
// virtual clock reached. Run panics if the models deadlock (all threads
// parked) or if a model panics.
func (s *Sim) Run(bodies []func(t *Thread)) uint64 {
	if len(bodies) == 0 {
		return 0
	}
	if len(bodies) > s.topo.TotalThreads() {
		panic(fmt.Sprintf("sim: %d threads exceed topology capacity %d", len(bodies), s.topo.TotalThreads()))
	}
	// Working set vs per-node L3: beyond capacity, that fraction of cache
	// hits becomes DRAM accesses. Replicated structures count once per
	// node, so per-node working set is roughly total lines / nodes for NR
	// and the full set for shared structures; allocated lines already
	// reflect that (NR allocates one replica per node).
	if s.cost.L3Lines > 0 {
		perNode := len(s.lines) / s.topo.Nodes()
		if perNode > s.cost.L3Lines {
			s.capMissPermille = uint64(1000 - 1000*s.cost.L3Lines/perNode)
		} else {
			s.capMissPermille = 0
		}
	}
	s.threads = nil
	s.alive = len(bodies)
	place := topology.NewFillPlacement(s.topo)
	for i, body := range bodies {
		thread, node := place.Next()
		t := &Thread{
			ID: i, Node: node, Core: thread / s.topo.SMT(), sim: s,
			resume:  make(chan struct{}),
			heapIdx: -1,
			rng:     uint64(i)*0x9e3779b97f4a7c15 + 1,
		}
		s.threads = append(s.threads, t)
		go func(t *Thread, body func(*Thread)) {
			<-t.resume
			defer func() {
				if r := recover(); r != nil {
					s.fault = r
					close(s.done)
					return
				}
				s.exit(t)
			}()
			body(t)
		}(t, body)
	}
	for _, t := range s.threads {
		heap.Push(&s.ready, t)
	}
	s.dispatchNext()
	<-s.done
	if s.fault != nil {
		panic(s.fault)
	}
	var max uint64
	for _, t := range s.threads {
		if t.clock > max {
			max = t.clock
		}
	}
	return max
}

// dispatchNext hands the control token to the minimum-clock ready thread.
// Called when no thread is running.
func (s *Sim) dispatchNext() {
	if s.ready.Len() == 0 {
		if s.alive > 0 {
			panic(fmt.Sprintf("sim: deadlock — %d threads parked with empty ready queue", s.alive))
		}
		close(s.done)
		return
	}
	next := heap.Pop(&s.ready).(*Thread)
	next.resume <- struct{}{}
}

// exit retires a finished thread and passes the token on.
func (s *Sim) exit(t *Thread) {
	s.alive--
	s.dispatchNext()
}

// sync pauses t until it holds the globally minimal clock, ensuring shared
// state is touched in virtual-time order.
func (s *Sim) sync(t *Thread) {
	for s.ready.Len() > 0 {
		min := s.ready.Peek()
		if min.clock > t.clock || (min.clock == t.clock && min.ID > t.ID) {
			return
		}
		// Another thread is earlier: run it first.
		heap.Push(&s.ready, t)
		s.dispatchNext()
		<-t.resume
	}
}

// chargeAccess computes and applies the coherence cost of an access by t.
func (s *Sim) chargeAccess(t *Thread, a Addr, write, cas bool) {
	ln := &s.lines[a]
	bit := uint32(1) << uint(t.Node)
	var c uint64
	if write {
		switch {
		case ln.ownerCore == int32(t.Core) && ln.sharers&^bit == 0:
			// Exclusive in our core's cache.
			c = s.cost.SameCore
		case (ln.ownerNode == int16(t.Node) || ln.ownerNode < 0) && ln.sharers&^bit == 0:
			// Owned within our node (or clean); cross-core upgrade.
			c = s.cost.SameNode
		default:
			// Copies on other nodes must be invalidated.
			c = s.cost.Remote
		}
		ln.ownerCore = int32(t.Core)
		ln.ownerNode = int16(t.Node)
		ln.sharers = bit
	} else {
		switch {
		case ln.ownerCore == int32(t.Core):
			c = s.cost.SameCore
		case ln.ownerNode == int16(t.Node) || ln.sharers&bit != 0 || ln.ownerNode < 0:
			c = s.cost.SameNode
		default:
			c = s.cost.Remote
		}
		ln.sharers |= bit
	}
	if cas {
		c += s.cost.CASExtra
	}
	if s.capMissPermille > 0 && c <= s.cost.SameNode {
		// L3 capacity miss: the line was evicted; fetch from local DRAM.
		s.missRng ^= s.missRng << 13
		s.missRng ^= s.missRng >> 7
		s.missRng ^= s.missRng << 17
		if s.missRng%1000 < s.capMissPermille {
			c = s.cost.Mem
		}
	}
	if s.cost.DirectoryMissPermille > 0 && c < s.cost.Remote {
		s.missRng ^= s.missRng << 13
		s.missRng ^= s.missRng >> 7
		s.missRng ^= s.missRng << 17
		if s.missRng%1000 < s.cost.DirectoryMissPermille {
			c = s.cost.Remote
		}
	}
	// Ownership transfers (all writes/CAS beyond the core's own cache, and
	// reads that must fetch from a remote owner) serialize on the line;
	// other non-resident accesses stall behind an in-flight transfer but do
	// not extend the line's busy window (shared copies are served in
	// parallel once the transfer lands).
	transfer := c > s.cost.SameCore && (write || cas || c == s.cost.Remote)
	if transfer {
		if ln.availableAt > t.clock {
			t.clock = ln.availableAt
		}
		t.clock += c
		ln.availableAt = t.clock
	} else {
		if c > s.cost.SameCore && ln.availableAt > t.clock {
			t.clock = ln.availableAt
		}
		t.clock += c
	}
}

// Read loads the value at a, charging coherence cost.
func (s *Sim) Read(t *Thread, a Addr) uint64 {
	s.sync(t)
	s.chargeAccess(t, a, false, false)
	return s.lines[a].val
}

// ReadStream loads the value at a as part of a sequential scan (log
// replay): remote fetches are prefetched and pipelined, so they cost the
// stream rate and do not serialize on the line the way demand misses do.
func (s *Sim) ReadStream(t *Thread, a Addr) uint64 {
	s.sync(t)
	ln := &s.lines[a]
	bit := uint32(1) << uint(t.Node)
	switch {
	case ln.ownerCore == int32(t.Core):
		t.clock += s.cost.SameCore
	case ln.ownerNode == int16(t.Node) || ln.sharers&bit != 0 || ln.ownerNode < 0:
		t.clock += s.cost.SameNode
	default:
		t.clock += s.cost.Stream
	}
	ln.sharers |= bit
	return ln.val
}

// Write stores v at a, charging coherence cost and waking satisfied waiters.
func (s *Sim) Write(t *Thread, a Addr, v uint64) {
	s.sync(t)
	s.chargeAccess(t, a, true, false)
	s.lines[a].val = v
	s.wake(t, a, v)
}

// CAS atomically replaces old with new at a, reporting success. A CAS whose
// expected value is already stale fails early — the coherence protocol
// answers from the (possibly shared) current copy without granting
// exclusive ownership — so failures cost a node-level access and do not
// occupy the line; only successful CAS pays the full serialized transfer.
func (s *Sim) CAS(t *Thread, a Addr, old, new uint64) bool {
	s.sync(t)
	if s.lines[a].val != old {
		t.clock += s.cost.SameNode + s.cost.CASExtra
		return false
	}
	s.chargeAccess(t, a, true, true)
	s.lines[a].val = new
	s.wake(t, a, new)
	return true
}

// Add atomically adds delta at a and returns the new value.
func (s *Sim) Add(t *Thread, a Addr, delta uint64) uint64 {
	s.sync(t)
	s.chargeAccess(t, a, true, true)
	s.lines[a].val += delta
	s.wake(t, a, s.lines[a].val)
	return s.lines[a].val
}

// Compute advances t's clock by ns of purely local work.
func (s *Sim) Compute(t *Thread, ns uint64) {
	t.clock += ns
}

// WaitUntil parks t until the value at a satisfies pred. The check itself
// costs a read; each wake-up costs another read (the waiter re-fetches the
// line after the writer invalidated it).
func (s *Sim) WaitUntil(t *Thread, a Addr, pred func(uint64) bool) uint64 {
	for {
		v := s.Read(t, a)
		if pred(v) {
			return v
		}
		// Park until a store to a satisfies pred.
		s.waiters[a] = append(s.waiters[a], waiter{t: t, pred: pred})
		s.dispatchNext()
		<-t.resume
	}
}

// wake moves satisfied waiters of a to the ready queue. The waiter resumes
// no earlier than the writer's clock (it observes the new value).
func (s *Sim) wake(writer *Thread, a Addr, v uint64) {
	ws := s.waiters[a]
	if len(ws) == 0 {
		return
	}
	var still []waiter
	for _, w := range ws {
		if w.pred(v) {
			if w.t.clock < writer.clock {
				w.t.clock = writer.clock
			}
			heap.Push(&s.ready, w.t)
		} else {
			still = append(still, w)
		}
	}
	if len(still) == 0 {
		delete(s.waiters, a)
	} else {
		s.waiters[a] = still
	}
}

// readyHeap orders threads by (clock, ID).
type readyHeap struct {
	items []*Thread
}

func (h *readyHeap) Len() int { return len(h.items) }
func (h *readyHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.ID < b.ID
}
func (h *readyHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}
func (h *readyHeap) Push(x any) {
	t := x.(*Thread)
	t.heapIdx = len(h.items)
	h.items = append(h.items, t)
}
func (h *readyHeap) Pop() any {
	t := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	t.heapIdx = -1
	return t
}
func (h *readyHeap) Peek() *Thread { return h.items[0] }
