package sim

import (
	"testing"

	"github.com/asplos17/nr/internal/topology"
)

func testSim() *Sim { return New(topology.New(2, 2, 1), IntelCosts()) }

func TestSingleThreadReadWrite(t *testing.T) {
	s := testSim()
	a := s.Alloc(4)
	var v1, v2 uint64
	s.Run([]func(*Thread){func(th *Thread) {
		s.Write(th, a, 42)
		v1 = s.Read(th, a)
		s.Write(th, a+1, 7)
		v2 = s.Read(th, a+1)
	}})
	if v1 != 42 || v2 != 7 {
		t.Errorf("read back %d,%d want 42,7", v1, v2)
	}
}

func TestCostTiers(t *testing.T) {
	s := testSim()
	a := s.Alloc(1)
	cost := IntelCosts()
	var after1, after2, after3 uint64
	s.Run([]func(*Thread){func(th *Thread) {
		s.Write(th, a, 1) // clean line, first write: SameNode
		after1 = th.Clock()
		s.Write(th, a, 2) // owned by this core: SameCore
		after2 = th.Clock()
		s.Read(th, a) // own dirty line: SameCore
		after3 = th.Clock()
	}})
	if after1 != cost.SameNode {
		t.Errorf("first write cost %d, want SameNode %d", after1, cost.SameNode)
	}
	if after2-after1 != cost.SameCore {
		t.Errorf("owned write cost %d, want SameCore %d", after2-after1, cost.SameCore)
	}
	if after3-after2 != cost.SameCore {
		t.Errorf("owned read cost %d, want SameCore %d", after3-after2, cost.SameCore)
	}
}

func TestRemoteCostAndSharing(t *testing.T) {
	// Thread 0 on node 0 writes; thread on node 1 reads (remote), then
	// re-reads (node-shared).
	topo := topology.New(2, 1, 1)
	s := New(topo, IntelCosts())
	a := s.Alloc(1)
	cost := IntelCosts()
	var firstRead, secondRead uint64
	bodies := []func(*Thread){
		func(th *Thread) { // node 0
			s.Write(th, a, 5)
		},
		func(th *Thread) { // node 1
			s.Compute(th, 1000) // run after the write
			c0 := th.Clock()
			s.Read(th, a)
			firstRead = th.Clock() - c0
			c1 := th.Clock()
			s.Read(th, a)
			secondRead = th.Clock() - c1
		},
	}
	s.Run(bodies)
	if firstRead != cost.Remote {
		t.Errorf("first remote read cost %d, want %d", firstRead, cost.Remote)
	}
	if secondRead != cost.SameNode {
		t.Errorf("second read cost %d, want SameNode %d", secondRead, cost.SameNode)
	}
}

func TestCASSemantics(t *testing.T) {
	s := testSim()
	a := s.Alloc(1)
	var ok1, ok2 bool
	s.Run([]func(*Thread){func(th *Thread) {
		ok1 = s.CAS(th, a, 0, 10)
		ok2 = s.CAS(th, a, 0, 20) // must fail: value is 10
	}})
	if !ok1 || ok2 {
		t.Errorf("CAS results %v,%v want true,false", ok1, ok2)
	}
}

func TestAddAndWaitUntil(t *testing.T) {
	s := testSim()
	a := s.Alloc(1)
	var observed uint64
	s.Run([]func(*Thread){
		func(th *Thread) {
			s.Compute(th, 500)
			s.Add(th, a, 3)
		},
		func(th *Thread) {
			observed = s.WaitUntil(th, a, func(v uint64) bool { return v >= 3 })
		},
	})
	if observed != 3 {
		t.Errorf("WaitUntil observed %d, want 3", observed)
	}
}

func TestWaiterResumesNoEarlierThanWriter(t *testing.T) {
	s := testSim()
	a := s.Alloc(1)
	var writerClock, waiterClock uint64
	s.Run([]func(*Thread){
		func(th *Thread) {
			s.Compute(th, 10000)
			s.Write(th, a, 1)
			writerClock = th.Clock()
		},
		func(th *Thread) {
			s.WaitUntil(th, a, func(v uint64) bool { return v == 1 })
			waiterClock = th.Clock()
		},
	})
	if waiterClock < writerClock {
		t.Errorf("waiter resumed at %d before writer's store at %d", waiterClock, writerClock)
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("deadlocked model did not panic")
		}
	}()
	s := testSim()
	a := s.Alloc(1)
	s.Run([]func(*Thread){func(th *Thread) {
		s.WaitUntil(th, a, func(v uint64) bool { return v == 99 }) // never satisfied
	}})
}

func TestModelPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("model panic not rethrown")
		}
	}()
	s := testSim()
	s.Run([]func(*Thread){func(th *Thread) { panic("boom") }})
}

func TestTooManyThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overflow not detected")
		}
	}()
	s := New(topology.New(1, 1, 1), IntelCosts())
	s.Run(make([]func(*Thread), 2))
}

func TestLineTransferSerialization(t *testing.T) {
	// Two threads on different nodes CAS the same line: total time must be
	// at least the sum of the transfers, not the max.
	topo := topology.New(2, 1, 1)
	s := New(topo, IntelCosts())
	a := s.Alloc(1)
	const per = 100
	bodies := []func(*Thread){
		func(th *Thread) {
			for i := 0; i < per; i++ {
				v := s.Read(th, a)
				s.CAS(th, a, v, v+1)
			}
		},
		func(th *Thread) {
			for i := 0; i < per; i++ {
				v := s.Read(th, a)
				s.CAS(th, a, v, v+1)
			}
		},
	}
	total := s.Run(bodies)
	cost := IntelCosts()
	// 200 CAS transfers at Remote+CASExtra minimum — they cannot overlap.
	if min := uint64(2*per) * (cost.Remote); total < min {
		t.Errorf("total %dns under serialization bound %dns", total, min)
	}
}

func TestSpinLockMutualExclusionInSim(t *testing.T) {
	s := New(topology.New(2, 2, 1), IntelCosts())
	lock := NewSpinLock(s)
	counterLine := s.Alloc(1)
	const per = 200
	bodies := make([]func(*Thread), 4)
	for i := range bodies {
		bodies[i] = func(th *Thread) {
			for n := 0; n < per; n++ {
				lock.Lock(s, th)
				v := s.Read(th, counterLine)
				s.Write(th, counterLine, v+1)
				lock.Unlock(s, th)
			}
		}
	}
	s.Run(bodies)
	if got := s.lines[counterLine].val; got != 4*per {
		t.Errorf("counter = %d, want %d (lost increments)", got, 4*per)
	}
}

func TestDistRWLockInSim(t *testing.T) {
	s := New(topology.New(2, 2, 1), IntelCosts())
	lock := NewDistRWLock(s, 4)
	data := s.Alloc(1)
	shadow := s.Alloc(1)
	bad := false
	bodies := make([]func(*Thread), 4)
	for i := range bodies {
		slot := i
		writer := i%2 == 0
		bodies[i] = func(th *Thread) {
			for n := 0; n < 150; n++ {
				if writer {
					lock.Lock(s, th)
					v := s.Read(th, data)
					s.Write(th, data, v+1)
					s.Write(th, shadow, v+1)
					lock.Unlock(s, th)
				} else {
					lock.RLock(s, th, slot)
					if s.Read(th, data) != s.Read(th, shadow) {
						bad = true
					}
					lock.RUnlock(s, th, slot)
				}
			}
		}
	}
	s.Run(bodies)
	if bad {
		t.Error("reader observed torn write under readers-writer lock")
	}
	if got := s.lines[data].val; got != 300 {
		t.Errorf("writer count = %d, want 300", got)
	}
}

func TestCentralRWLockInSim(t *testing.T) {
	s := New(topology.New(2, 2, 1), IntelCosts())
	lock := NewCentralRWLock(s)
	data := s.Alloc(1)
	bodies := make([]func(*Thread), 4)
	for i := range bodies {
		writer := i < 2
		bodies[i] = func(th *Thread) {
			for n := 0; n < 100; n++ {
				if writer {
					lock.Lock(s, th)
					v := s.Read(th, data)
					s.Write(th, data, v+1)
					lock.Unlock(s, th)
				} else {
					lock.RLock(s, th, 0)
					s.Read(th, data)
					lock.RUnlock(s, th, 0)
				}
			}
		}
	}
	s.Run(bodies)
	if got := s.lines[data].val; got != 200 {
		t.Errorf("writer count = %d, want 200", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		s := New(topology.Intel4x14x2(), IntelCosts())
		p := Profile{NLines: 1000, UpdateCLines: 4, ReadCLines: 2, UpdateNs: 50, ReadNs: 20,
			UpdateHotPermille: 300, ReadHotPermille: 300, HotLines: 2}
		res := RunNR(s, p, Run{Threads: 24, OpsPerThread: 300, UpdatePermille: 300}, NROpts{})
		return res.Nanos
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("simulation not deterministic: %d vs %d", a, b)
	}
}

func TestCapacityMissSlowsLargeStructures(t *testing.T) {
	small := New(topology.Intel4x14x2(), IntelCosts())
	big := New(topology.Intel4x14x2(), IntelCosts())
	r := Run{Threads: 8, OpsPerThread: 500, UpdatePermille: 1000}
	inL3 := RunSL(small, Synthetic(20000), r)
	outL3 := RunSL(big, Synthetic(4000000), r)
	if outL3.OpsPerUs() >= inL3.OpsPerUs() {
		t.Errorf("beyond-L3 run (%.2f) not slower than in-L3 run (%.2f)",
			outL3.OpsPerUs(), inL3.OpsPerUs())
	}
}

// Synthetic mirrors bench.Synthetic for tests without an import cycle.
func Synthetic(n int) Profile {
	return Profile{NLines: n, UpdateCLines: 8, ReadCLines: 8, UpdateNs: 20, ReadNs: 20,
		UpdateHotPermille: 1000, ReadHotPermille: 1000, HotLines: 1, HotPathLines: 1}
}
