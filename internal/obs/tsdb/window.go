// Window derivation: turning two adjacent cumulative captures into one
// per-interval view. This is the cold read path — it allocates freely.
package tsdb

import (
	"time"

	"github.com/asplos17/nr/internal/histogram"
	"github.com/asplos17/nr/internal/obs"
)

// NodeWindow is one node's slice of a Window.
type NodeWindow struct {
	Node            int     `json:"node"`
	ReadOpsPerSec   float64 `json:"read_ops_per_sec"`
	UpdateOpsPerSec float64 `json:"update_ops_per_sec"`
	CombinesPerSec  float64 `json:"combines_per_sec"`
	// CombineBusyFrac is the fraction of the window the node's combiners
	// spent inside rounds (combine nanoseconds over wall nanoseconds).
	CombineBusyFrac      float64 `json:"combine_busy_frac"`
	ReaderRefreshPerSec  float64 `json:"reader_refresh_per_sec"`
	ReaderAcquiresPerSec float64 `json:"reader_acquires_per_sec"`
	// CompletedLag is the node's replica lag at the window's end.
	CompletedLag uint64 `json:"completed_lag"`
}

// Window is one derived interval: rates from counter deltas, percentiles
// from bucket deltas, instant gauges from the interval's closing capture.
type Window struct {
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Seconds float64   `json:"seconds"`

	OpsPerSec       float64 `json:"ops_per_sec"`
	ReadOpsPerSec   float64 `json:"read_ops_per_sec"`
	UpdateOpsPerSec float64 `json:"update_ops_per_sec"`
	CombinesPerSec  float64 `json:"combines_per_sec"`

	// Batch distribution of the window's combining rounds.
	BatchMean float64 `json:"batch_mean"`
	BatchP50  uint64  `json:"batch_p50"`
	BatchP99  uint64  `json:"batch_p99"`

	// Per-class latency tails over the window, nanoseconds.
	ReadP50Ns    uint64 `json:"read_p50_ns"`
	ReadP99Ns    uint64 `json:"read_p99_ns"`
	ReadP999Ns   uint64 `json:"read_p999_ns"`
	UpdateP50Ns  uint64 `json:"update_p50_ns"`
	UpdateP99Ns  uint64 `json:"update_p99_ns"`
	UpdateP999Ns uint64 `json:"update_p999_ns"`

	ReaderRefreshPerSec  float64 `json:"reader_refresh_per_sec"`
	ReaderAcquiresPerSec float64 `json:"reader_acquires_per_sec"`

	// Instant gauges at the window's end.
	LogOccupancy  float64 `json:"log_occupancy"`
	MaxReplicaLag uint64  `json:"max_replica_lag"`

	// WAL rates and state; zero unless the instance is durable.
	HasWAL           bool    `json:"has_wal"`
	WALAppendsPerSec float64 `json:"wal_appends_per_sec"`
	WALFsyncsPerSec  float64 `json:"wal_fsyncs_per_sec"`
	// FsyncMeanNs is the mean fsync latency of the window's fsyncs.
	FsyncMeanNs uint64 `json:"fsync_mean_ns"`
	DurableLag  uint64 `json:"durable_lag"`

	Nodes []NodeWindow `json:"nodes,omitempty"`
}

// rate divides a counter delta by the window length, clamping misordered
// captures (counter reset, racy reads) to 0.
func rate(cur, prev uint64, secs float64) float64 {
	if secs <= 0 || cur < prev {
		return 0
	}
	return float64(cur-prev) / secs
}

// deriveWindow builds the window between two adjacent captures.
func deriveWindow(prev, cur *sample) Window {
	secs := cur.when.Sub(prev.when).Seconds()
	w := Window{
		Start:   prev.when,
		End:     cur.when,
		Seconds: secs,

		ReadOpsPerSec:   rate(cur.g.ReadOps, prev.g.ReadOps, secs),
		UpdateOpsPerSec: rate(cur.g.UpdateOps, prev.g.UpdateOps, secs),
		CombinesPerSec:  rate(cur.g.Combines, prev.g.Combines, secs),

		ReaderRefreshPerSec:  rate(cur.g.ReaderRefreshes, prev.g.ReaderRefreshes, secs),
		ReaderAcquiresPerSec: rate(cur.g.ReaderAcquires, prev.g.ReaderAcquires, secs),

		LogOccupancy:  cur.g.LogOccupancy,
		MaxReplicaLag: cur.g.MaxReplicaLag,
	}
	w.OpsPerSec = w.ReadOpsPerSec + w.UpdateOpsPerSec

	w.BatchMean = obs.CountDeltaMean(&cur.cum.Batch, &prev.cum.Batch)
	w.BatchP50 = obs.CountDeltaPercentile(&cur.cum.Batch, &prev.cum.Batch, 50)
	w.BatchP99 = obs.CountDeltaPercentile(&cur.cum.Batch, &prev.cum.Batch, 99)

	rd, up := &cur.cum.Latency[obs.OpRead], &cur.cum.Latency[obs.OpUpdate]
	rdp, upp := &prev.cum.Latency[obs.OpRead], &prev.cum.Latency[obs.OpUpdate]
	w.ReadP50Ns = uint64(histogram.DeltaPercentile(rd, rdp, 50).Nanoseconds())
	w.ReadP99Ns = uint64(histogram.DeltaPercentile(rd, rdp, 99).Nanoseconds())
	w.ReadP999Ns = uint64(histogram.DeltaPercentile(rd, rdp, 99.9).Nanoseconds())
	w.UpdateP50Ns = uint64(histogram.DeltaPercentile(up, upp, 50).Nanoseconds())
	w.UpdateP99Ns = uint64(histogram.DeltaPercentile(up, upp, 99).Nanoseconds())
	w.UpdateP999Ns = uint64(histogram.DeltaPercentile(up, upp, 99.9).Nanoseconds())

	if cur.g.HasWAL {
		w.HasWAL = true
		w.WALAppendsPerSec = rate(cur.g.WALAppends, prev.g.WALAppends, secs)
		w.WALFsyncsPerSec = rate(cur.g.WALFsyncs, prev.g.WALFsyncs, secs)
		if df := cur.g.WALFsyncs - prev.g.WALFsyncs; cur.g.WALFsyncs > prev.g.WALFsyncs && cur.g.WALFsyncNanos >= prev.g.WALFsyncNanos {
			w.FsyncMeanNs = (cur.g.WALFsyncNanos - prev.g.WALFsyncNanos) / df
		}
		w.DurableLag = cur.g.DurableLag
	}

	// Per-node: counter deltas from the merged observer capture, lag from
	// the closing gauges.
	for i := range cur.cum.Nodes {
		cn := &cur.cum.Nodes[i]
		nw := NodeWindow{Node: i}
		if i < len(prev.cum.Nodes) {
			pn := &prev.cum.Nodes[i]
			nw.ReadOpsPerSec = rate(cn.ReadOps, pn.ReadOps, secs)
			nw.UpdateOpsPerSec = rate(cn.UpdateOps, pn.UpdateOps, secs)
			nw.CombinesPerSec = rate(cn.CombineRounds, pn.CombineRounds, secs)
			nw.ReaderRefreshPerSec = rate(cn.ReaderRefreshes, pn.ReaderRefreshes, secs)
			nw.ReaderAcquiresPerSec = rate(cn.ReaderPressure, pn.ReaderPressure, secs)
			if wall := secs * 1e9; wall > 0 && cn.CombineNanos >= pn.CombineNanos {
				nw.CombineBusyFrac = float64(cn.CombineNanos-pn.CombineNanos) / wall
			}
		}
		for _, rg := range cur.g.Replicas {
			if rg.Node == i {
				nw.CompletedLag = rg.CompletedLag
				break
			}
		}
		w.Nodes = append(w.Nodes, nw)
	}
	return w
}

// Snapshot derives every retained window, oldest first. Allocates; cold
// read path.
func (c *Collector) Snapshot() []Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < 2 {
		return nil
	}
	out := make([]Window, 0, c.n-1)
	// Oldest valid sample sits at head-n (mod ring).
	start := c.head - c.n
	for start < 0 {
		start += len(c.samples)
	}
	for k := 0; k < c.n-1; k++ {
		p := (start + k) % len(c.samples)
		q := (start + k + 1) % len(c.samples)
		out = append(out, deriveWindow(&c.samples[p], &c.samples[q]))
	}
	return out
}

// Last derives the most recent window; ok is false until two captures
// exist.
func (c *Collector) Last() (Window, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < 2 {
		return Window{}, false
	}
	q := c.head - 1
	if q < 0 {
		q += len(c.samples)
	}
	p := q - 1
	if p < 0 {
		p += len(c.samples)
	}
	return deriveWindow(&c.samples[p], &c.samples[q]), true
}
