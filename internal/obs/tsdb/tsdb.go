// Package tsdb is NR's windowed telemetry collector: a fixed-size ring of
// cumulative counter captures taken on a configurable cadence, from which
// per-window rates and tail latencies are derived on demand.
//
// The split matters: everything NR already exposes — core.Stats counters,
// the log/replica gauges, obs.Metrics histograms, persist.Stats — is
// cumulative since process start. Cumulative views answer "how much ever",
// not "how fast now": a dashboard, an SLO tracker, or the adaptive batching
// controller all need rates and percentiles *over the last few seconds*.
// Two cumulative captures subtract into exactly that (counter deltas become
// rates; raw histogram buckets subtract bucket-wise into the interval's
// distribution — summary percentiles do not subtract, which is why the
// collector captures buckets via obs.ReadCum, not obs.Snapshot).
//
// The capture path is allocation-free in steady state: ring slots are
// reused, the Gauges struct is filled in place by a caller-supplied Source
// closure (keeping tsdb free of a core dependency), and obs.ReadCum reuses
// its per-node slice. Deriving Windows and SLO statuses allocates, but that
// is the cold read path — a human or a scrape, not an operation.
package tsdb

import (
	"sync"
	"time"

	"github.com/asplos17/nr/internal/obs"
)

// ReplicaGauge is one replica's slice of a Gauges capture.
type ReplicaGauge struct {
	Node int `json:"node"`
	// CompletedLag is how many completed entries the replica has not yet
	// absorbed (core.ReplicaGauges.CompletedLag).
	CompletedLag uint64 `json:"completed_lag"`
	// ReaderAcquires is the replica lock's cumulative read acquisitions.
	ReaderAcquires uint64 `json:"reader_acquires"`
}

// Gauges is the flat cumulative capture the Source closure fills on every
// cadence tick: core counters, log gauges, and (when the instance is
// durable) WAL counters. Fill in place; the Replicas slice is reused
// across ticks (truncate with Replicas[:0] and append).
type Gauges struct {
	// Counters (cumulative; deltas become per-window rates).
	ReadOps         uint64 `json:"read_ops"`
	UpdateOps       uint64 `json:"update_ops"`
	Combines        uint64 `json:"combines"`
	CombinedOps     uint64 `json:"combined_ops"`
	ReaderRefreshes uint64 `json:"reader_refreshes"`
	HelpedEntries   uint64 `json:"helped_entries"`
	ParallelOps     uint64 `json:"parallel_ops"`
	ReaderAcquires  uint64 `json:"reader_acquires"`
	Panics          uint64 `json:"panics"`
	Stalls          uint64 `json:"stalls"`

	// Instant gauges (carried through to the window as-is).
	LogTail       uint64  `json:"log_tail"`
	LogCompleted  uint64  `json:"log_completed"`
	LogOccupancy  float64 `json:"log_occupancy"`
	MaxReplicaLag uint64  `json:"max_replica_lag"`

	// WAL counters; valid only when HasWAL.
	HasWAL        bool   `json:"has_wal"`
	WALAppends    uint64 `json:"wal_appends"`
	WALPages      uint64 `json:"wal_pages"`
	WALFsyncs     uint64 `json:"wal_fsyncs"`
	WALFsyncNanos uint64 `json:"wal_fsync_ns"`
	WALSealStalls uint64 `json:"wal_seal_stalls"`
	DurableIndex  uint64 `json:"durable_index"`
	DurableLag    uint64 `json:"durable_lag"`

	Replicas []ReplicaGauge `json:"replicas"`
}

// Config configures a Collector.
type Config struct {
	// Interval is the capture cadence (default 1s).
	Interval time.Duration
	// Windows is how many derived windows the ring retains (default 120 —
	// two minutes of history at the default cadence).
	Windows int
	// Source fills a Gauges capture in place. Called under the collector's
	// lock, never concurrently with itself, so it may reuse private scratch
	// state. nil means no gauges (distribution-only telemetry).
	Source func(*Gauges)
	// Observed are the obs.Metrics observers whose raw buckets each capture
	// folds in (several for a sharded instance, merged bucket-wise). May be
	// empty: rates still work, latency percentiles read as 0.
	Observed []*obs.Metrics
	// SLOs are the latency objectives to track per window.
	SLOs []SLO
	// OnBreach, when set, is called (outside the collector's lock, on the
	// capture goroutine) when a window breaches an SLO, rate-limited to one
	// call per BreachMinInterval. It must not block.
	OnBreach func(BreachEvent)
	// BreachMinInterval is the minimum spacing between OnBreach calls
	// (default 30s).
	BreachMinInterval time.Duration
	// now overrides the clock for deterministic tests.
	now func() time.Time
}

// sample is one ring slot: a cumulative capture at one instant.
type sample struct {
	when time.Time
	g    Gauges
	cum  obs.Cum
}

// Collector captures cumulative telemetry on a cadence into a fixed ring
// and derives windowed views on demand. Create with New, then either Start
// the cadence goroutine or drive Advance directly (tests).
type Collector struct {
	cfg Config

	mu       sync.Mutex
	samples  []sample // ring; n valid, next write at head
	head     int
	n        int
	scratch  obs.Cum // shard-merge scratch, reused every tick
	slo      []sloState
	lastFire time.Time

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// DefaultInterval is the capture cadence when Config.Interval is zero.
const DefaultInterval = time.Second

// DefaultWindows is the ring depth when Config.Windows is zero.
const DefaultWindows = 120

// DefaultBreachMinInterval spaces OnBreach calls when the config leaves
// BreachMinInterval zero.
const DefaultBreachMinInterval = 30 * time.Second

// New builds a Collector. It takes its first capture immediately, so the
// first derived window appears one interval later.
func New(cfg Config) *Collector {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Windows <= 0 {
		cfg.Windows = DefaultWindows
	}
	if cfg.BreachMinInterval <= 0 {
		cfg.BreachMinInterval = DefaultBreachMinInterval
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	c := &Collector{
		cfg: cfg,
		// windows+1 samples bound windows derivable intervals.
		samples: make([]sample, cfg.Windows+1),
		slo:     make([]sloState, len(cfg.SLOs)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := range c.slo {
		c.slo[i].slo = cfg.SLOs[i]
		if c.slo[i].slo.Budget <= 0 {
			c.slo[i].slo.Budget = DefaultBudget
		}
	}
	c.Advance()
	return c
}

// Interval returns the configured capture cadence.
func (c *Collector) Interval() time.Duration { return c.cfg.Interval }

// Start launches the cadence goroutine. Safe to call once; Close stops it.
func (c *Collector) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			t := time.NewTicker(c.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-t.C:
					c.Advance()
				}
			}
		}()
	})
}

// Close stops the cadence goroutine (if started) and waits for it to exit.
// The collector remains readable after Close.
func (c *Collector) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	select {
	case <-c.done:
	default:
		// Never started: nothing to wait for.
		c.startOnce.Do(func() { close(c.done) })
		<-c.done
	}
}

// Advance takes one capture now: gauges via Source, raw distribution
// buckets via obs.ReadCum (merged across observers for sharded instances),
// then evaluates SLOs against the previous capture. Exported so tests (and
// callers that own their own cadence) can drive the ring deterministically.
// Allocation-free in steady state — ring slots and scratch are reused.
//
//nr:noalloc
func (c *Collector) Advance() {
	now := c.cfg.now()
	var (
		ev   BreachEvent
		fire bool
	)
	c.mu.Lock()
	s := &c.samples[c.head]
	s.when = now
	if c.cfg.Source != nil {
		c.cfg.Source(&s.g)
	}
	c.captureCum(s)
	prev := c.prevLocked()
	c.head = (c.head + 1) % len(c.samples)
	if c.n < len(c.samples) {
		c.n++
	}
	if prev != nil {
		ev, fire = c.checkSLOLocked(prev, s, now)
	}
	c.mu.Unlock()
	if fire && c.cfg.OnBreach != nil {
		c.cfg.OnBreach(ev)
	}
}

// captureCum fills s.cum from the configured observers: a straight ReadCum
// for the common single-observer case, a scratch-merged AddCum fold for
// sharded instances. Caller holds c.mu.
//
//nr:noalloc
func (c *Collector) captureCum(s *sample) {
	switch len(c.cfg.Observed) {
	case 0:
	case 1:
		c.cfg.Observed[0].ReadCum(&s.cum)
	default:
		resetCum(&s.cum)
		for _, m := range c.cfg.Observed {
			m.ReadCum(&c.scratch)
			obs.AddCum(&s.cum, &c.scratch)
		}
	}
}

// resetCum zeroes a Cum while keeping its Nodes capacity.
//
//nr:noalloc
func resetCum(dst *obs.Cum) {
	for c := range dst.Latency {
		dst.Latency[c].Reset()
	}
	dst.Batch.Reset()
	dst.Nodes = dst.Nodes[:0]
}

// prevLocked returns the most recent complete sample before head, nil when
// this is the first capture. Caller holds c.mu.
func (c *Collector) prevLocked() *sample {
	if c.n == 0 {
		return nil
	}
	i := c.head - 1
	if i < 0 {
		i += len(c.samples)
	}
	return &c.samples[i]
}

// Samples reports how many captures the ring currently holds.
func (c *Collector) Samples() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// LatestCum copies the newest capture's merged distribution buckets into
// dst (reusing dst.Nodes' capacity), reporting whether a capture exists.
// The Prometheus exposition reads cumulative histogram buckets this way —
// at most one collector interval stale, which a scraper cannot tell from
// scrape jitter.
func (c *Collector) LatestCum(dst *obs.Cum) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.prevLocked()
	if s == nil {
		return false
	}
	dst.Latency = s.cum.Latency
	dst.Batch = s.cum.Batch
	dst.Nodes = append(dst.Nodes[:0], s.cum.Nodes...)
	return true
}

// LatestGauges copies the newest capture's gauge snapshot into dst
// (reusing dst.Replicas' capacity), reporting whether a capture exists.
func (c *Collector) LatestGauges(dst *Gauges) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.prevLocked()
	if s == nil {
		return false
	}
	replicas := append(dst.Replicas[:0], s.g.Replicas...)
	*dst = s.g
	dst.Replicas = replicas
	return true
}
