package tsdb

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asplos17/nr/internal/obs"
)

// fakeClock steps a deterministic clock for Advance-driven tests.
type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time       { return f.t }
func (f *fakeClock) step(d time.Duration) { f.t = f.t.Add(d) }
func newClock() *fakeClock                { return &fakeClock{t: time.Unix(1000, 0)} }
func testConfig(clk *fakeClock, cfg Config) Config {
	cfg.now = clk.now
	return cfg
}

func TestWindowRatesFromCounterDeltas(t *testing.T) {
	clk := newClock()
	var g Gauges
	c := New(testConfig(clk, Config{
		Interval: time.Second,
		Windows:  4,
		Source:   func(dst *Gauges) { *dst = g },
	}))

	// Two seconds, 1000 reads and 100 updates per second.
	for i := 1; i <= 2; i++ {
		g.ReadOps = uint64(i) * 1000
		g.UpdateOps = uint64(i) * 100
		g.LogOccupancy = 0.25
		clk.step(time.Second)
		c.Advance()
	}

	w, ok := c.Last()
	if !ok {
		t.Fatal("no window after two captures")
	}
	if w.ReadOpsPerSec != 1000 || w.UpdateOpsPerSec != 100 {
		t.Errorf("rates = %v read/s %v upd/s, want 1000/100", w.ReadOpsPerSec, w.UpdateOpsPerSec)
	}
	if w.OpsPerSec != 1100 {
		t.Errorf("OpsPerSec = %v, want 1100", w.OpsPerSec)
	}
	if w.LogOccupancy != 0.25 {
		t.Errorf("LogOccupancy = %v, want 0.25 (closing capture's gauge)", w.LogOccupancy)
	}
	if w.Seconds != 1 {
		t.Errorf("Seconds = %v, want 1", w.Seconds)
	}

	ws := c.Snapshot()
	if len(ws) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(ws))
	}
	if !ws[0].End.Equal(ws[1].Start) {
		t.Errorf("windows not adjacent: %v then %v", ws[0].End, ws[1].Start)
	}
}

func TestRingEvictsOldestWindows(t *testing.T) {
	clk := newClock()
	var reads uint64
	c := New(testConfig(clk, Config{
		Interval: time.Second,
		Windows:  3,
		Source: func(dst *Gauges) {
			reads += 10
			dst.ReadOps = reads
		},
	}))

	for i := 0; i < 10; i++ {
		clk.step(time.Second)
		c.Advance()
	}
	if n := c.Samples(); n != 4 { // Windows+1 ring slots
		t.Errorf("Samples = %d, want 4", n)
	}
	ws := c.Snapshot()
	if len(ws) != 3 {
		t.Fatalf("Snapshot len = %d, want 3 retained windows", len(ws))
	}
	for i, w := range ws {
		if w.ReadOpsPerSec != 10 {
			t.Errorf("window %d rate = %v, want 10", i, w.ReadOpsPerSec)
		}
	}
}

func TestCounterResetClampsToZero(t *testing.T) {
	clk := newClock()
	var g Gauges
	c := New(testConfig(clk, Config{Windows: 4, Source: func(dst *Gauges) { *dst = g }}))

	g.ReadOps = 1000
	clk.step(time.Second)
	c.Advance()
	g.ReadOps = 50 // went backwards (reset / racy capture)
	clk.step(time.Second)
	c.Advance()

	w, _ := c.Last()
	if w.ReadOpsPerSec != 0 {
		t.Errorf("rate over a counter reset = %v, want clamped 0", w.ReadOpsPerSec)
	}
}

func TestWindowLatencyTailsFromBucketDeltas(t *testing.T) {
	clk := newClock()
	m := obs.NewMetrics(2)
	c := New(testConfig(clk, Config{Windows: 4, Observed: []*obs.Metrics{m}}))

	// First interval: all reads fast.
	for i := 0; i < 1000; i++ {
		m.OpDone(0, obs.OpRead, time.Microsecond)
	}
	clk.step(time.Second)
	c.Advance()

	// Second interval: slow tail appears. The window must report it even
	// though lifetime-cumulative percentiles would still be dominated by the
	// earlier fast traffic.
	for i := 0; i < 90; i++ {
		m.OpDone(0, obs.OpRead, time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		m.OpDone(0, obs.OpRead, 10*time.Millisecond)
	}
	clk.step(time.Second)
	c.Advance()

	w, _ := c.Last()
	if w.ReadP99Ns < uint64((5 * time.Millisecond).Nanoseconds()) {
		t.Errorf("window p99 = %dns, want the interval's own 10ms tail visible", w.ReadP99Ns)
	}
	if w.ReadP50Ns > uint64((100 * time.Microsecond).Nanoseconds()) {
		t.Errorf("window p50 = %dns, want ~1µs", w.ReadP50Ns)
	}

	ws := c.Snapshot()
	if first := ws[0]; first.ReadP99Ns >= uint64((5 * time.Millisecond).Nanoseconds()) {
		t.Errorf("first window p99 = %dns, should not see the later tail", first.ReadP99Ns)
	}
}

func TestWindowBatchDistribution(t *testing.T) {
	clk := newClock()
	m := obs.NewMetrics(1)
	c := New(testConfig(clk, Config{Windows: 4, Observed: []*obs.Metrics{m}}))

	for i := 0; i < 100; i++ {
		m.CombineEnd(0, 8, 8, time.Microsecond)
	}
	clk.step(time.Second)
	c.Advance()

	w, _ := c.Last()
	if w.BatchMean < 7 || w.BatchMean > 9 {
		t.Errorf("BatchMean = %v, want ~8", w.BatchMean)
	}
	if w.BatchP50 < 8 {
		t.Errorf("BatchP50 = %d, want >= 8", w.BatchP50)
	}
	if len(w.Nodes) != 1 || w.Nodes[0].CombinesPerSec != 100 {
		t.Errorf("node window = %+v, want 100 combines/s on node 0", w.Nodes)
	}
}

func TestShardedObserversMergeBucketwise(t *testing.T) {
	clk := newClock()
	m0, m1 := obs.NewMetrics(1), obs.NewMetrics(1)
	c := New(testConfig(clk, Config{Windows: 4, Observed: []*obs.Metrics{m0, m1}}))

	for i := 0; i < 500; i++ {
		m0.OpDone(0, obs.OpRead, time.Microsecond)
		m1.OpDone(0, obs.OpRead, time.Microsecond)
	}
	clk.step(time.Second)
	c.Advance()

	w, _ := c.Last()
	if w.Nodes[0].ReadOpsPerSec != 1000 {
		t.Errorf("merged node read rate = %v, want 1000 across two shards", w.Nodes[0].ReadOpsPerSec)
	}
}

func TestSLOBreachAndBudget(t *testing.T) {
	clk := newClock()
	m := obs.NewMetrics(1)
	var breaches []BreachEvent
	c := New(testConfig(clk, Config{
		Windows:           8,
		Observed:          []*obs.Metrics{m},
		SLOs:              []SLO{{Class: obs.OpRead, P99: time.Millisecond, Budget: 0.5}},
		OnBreach:          func(ev BreachEvent) { breaches = append(breaches, ev) },
		BreachMinInterval: time.Nanosecond, // no rate limit for the test
	}))

	// Window 1: healthy.
	for i := 0; i < 100; i++ {
		m.OpDone(0, obs.OpRead, time.Microsecond)
	}
	clk.step(time.Second)
	c.Advance()
	if got := c.SLOStatuses(); got[0].Breached || got[0].TotalWindows != 1 {
		t.Fatalf("healthy window judged wrong: %+v", got[0])
	}
	if len(breaches) != 0 {
		t.Fatalf("breach fired on a healthy window")
	}

	// Window 2: p99 blows through 1ms.
	for i := 0; i < 100; i++ {
		m.OpDone(0, obs.OpRead, 20*time.Millisecond)
	}
	clk.step(time.Second)
	c.Advance()

	st := c.SLOStatuses()[0]
	if !st.Breached || st.BreachedWindows != 1 || st.TotalWindows != 2 {
		t.Fatalf("breached window judged wrong: %+v", st)
	}
	if st.BudgetBurn != 1 { // 1 of 2 windows breached, budget 0.5
		t.Errorf("BudgetBurn = %v, want 1.0", st.BudgetBurn)
	}
	if len(breaches) != 1 || breaches[0].Status.Class != "read" {
		t.Fatalf("breach callback = %+v, want one read-class event", breaches)
	}

	// Window 3: no traffic — not judged, state holds.
	clk.step(time.Second)
	c.Advance()
	if st := c.SLOStatuses()[0]; st.TotalWindows != 2 {
		t.Errorf("no-traffic window was judged: %+v", st)
	}
}

func TestSLOBreachRateLimit(t *testing.T) {
	clk := newClock()
	m := obs.NewMetrics(1)
	var fired atomic.Int32
	c := New(testConfig(clk, Config{
		Windows:           8,
		Observed:          []*obs.Metrics{m},
		SLOs:              []SLO{{Class: obs.OpRead, P99: time.Millisecond}},
		OnBreach:          func(BreachEvent) { fired.Add(1) },
		BreachMinInterval: 30 * time.Second,
	}))

	for w := 0; w < 5; w++ {
		for i := 0; i < 100; i++ {
			m.OpDone(0, obs.OpRead, 20*time.Millisecond)
		}
		clk.step(time.Second)
		c.Advance()
	}
	if got := fired.Load(); got != 1 {
		t.Errorf("OnBreach fired %d times in 5s of sustained breach, want 1 (rate-limited)", got)
	}
	if st := c.SLOStatuses()[0]; st.BreachedWindows != 5 {
		t.Errorf("BreachedWindows = %d, want 5 (counting is not rate-limited)", st.BreachedWindows)
	}
}

func TestLatestCumAndGauges(t *testing.T) {
	clk := newClock()
	m := obs.NewMetrics(1)
	var g Gauges
	c := New(testConfig(clk, Config{
		Windows:  4,
		Observed: []*obs.Metrics{m},
		Source: func(dst *Gauges) {
			*dst = g
			dst.Replicas = append(dst.Replicas[:0], g.Replicas...)
		},
	}))

	for i := 0; i < 42; i++ {
		m.OpDone(0, obs.OpRead, time.Microsecond)
	}
	g.ReadOps = 42
	g.Replicas = []ReplicaGauge{{Node: 0, CompletedLag: 7}}
	clk.step(time.Second)
	c.Advance()

	var cum obs.Cum
	if !c.LatestCum(&cum) {
		t.Fatal("LatestCum found nothing")
	}
	if got := cum.Latency[obs.OpRead].Total; got != 42 {
		t.Errorf("latest capture read count = %d, want 42", got)
	}
	var lg Gauges
	if !c.LatestGauges(&lg) {
		t.Fatal("LatestGauges found nothing")
	}
	if lg.ReadOps != 42 || len(lg.Replicas) != 1 || lg.Replicas[0].CompletedLag != 7 {
		t.Errorf("latest gauges = %+v, want the closing capture", lg)
	}
}

func TestCloseWithoutStart(t *testing.T) {
	c := New(Config{Windows: 2})
	c.Close() // must not hang or panic
	c = New(Config{Windows: 2})
	c.Start()
	c.Close()
	c.Close() // idempotent
}

// TestConcurrentStress drives captures and every reader concurrently; run
// with -race it is the collector's data-race regression test.
func TestConcurrentStress(t *testing.T) {
	m := obs.NewMetrics(2)
	var ops atomic.Uint64
	c := New(Config{
		Interval: time.Millisecond,
		Windows:  16,
		Observed: []*obs.Metrics{m},
		Source:   func(dst *Gauges) { dst.ReadOps = ops.Load() },
		SLOs:     []SLO{{Class: obs.OpRead, P99: time.Microsecond}},
		OnBreach: func(BreachEvent) {},
	})
	defer c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: observer traffic on both nodes.
	for n := 0; n < 2; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.OpDone(node, obs.OpRead, 5*time.Millisecond)
				m.CombineEnd(node, 4, 4, time.Microsecond)
				ops.Add(1)
			}
		}(n)
	}
	// Capture cadence, driven hard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.Advance()
		}
	}()
	// Readers: every derived view.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cum obs.Cum
			var g Gauges
			for i := 0; i < 200; i++ {
				_ = c.Snapshot()
				_, _ = c.Last()
				_ = c.SLOStatuses()
				_ = c.LatestCum(&cum)
				_ = c.LatestGauges(&g)
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	timer := time.NewTimer(30 * time.Second)
	defer timer.Stop()
	// Let the workers run; the writers stop once the others are done.
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(stop)
	}()
	select {
	case <-done:
	case <-timer.C:
		t.Fatal("stress test wedged")
	}
}
