// SLO tracking on top of the windowed captures: each cadence tick closes a
// window, and each closed window with traffic is judged against every
// configured objective. Judgments use the window's own bucket deltas — the
// p99 of the last second, not of the process lifetime — so a breach means
// "users are hurting now", and recovery shows the moment it happens rather
// than after the lifetime histogram dilutes it.
package tsdb

import (
	"time"

	"github.com/asplos17/nr/internal/histogram"
	"github.com/asplos17/nr/internal/obs"
)

// DefaultBudget is the error budget when an SLO leaves Budget zero: the
// fraction of windows allowed to breach (1% — about one bad second every
// hundred).
const DefaultBudget = 0.01

// SLO is one latency objective: per-window tail bounds for one op class.
// Zero thresholds are not checked (set only P99 to track just p99).
type SLO struct {
	Class obs.OpClass   `json:"class"`
	P99   time.Duration `json:"p99"`
	P999  time.Duration `json:"p999"`
	// Budget is the allowed fraction of breached windows (default
	// DefaultBudget). BudgetBurn reports breach-fraction / Budget.
	Budget float64 `json:"budget"`
}

// SLOStatus is the tracker's view of one objective.
type SLOStatus struct {
	Class  string `json:"class"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
	// CurrentP99Ns / CurrentP999Ns are the most recent judged window's
	// tails (0 before any window had traffic).
	CurrentP99Ns  int64 `json:"current_p99_ns"`
	CurrentP999Ns int64 `json:"current_p999_ns"`
	// Breached reports whether the most recent judged window breached.
	Breached bool `json:"breached"`
	// BreachedWindows / TotalWindows count judged windows (windows with no
	// traffic in the class are not judged).
	BreachedWindows uint64 `json:"breached_windows"`
	TotalWindows    uint64 `json:"total_windows"`
	// BudgetBurn is breach-fraction over budget: 1.0 means the budget is
	// exactly spent, above 1 it is overspent.
	BudgetBurn float64 `json:"budget_burn"`
	// LastBreach is when a window last breached (zero time if never).
	LastBreach time.Time `json:"last_breach,omitempty"`
}

// BreachEvent describes one SLO breach, delivered to Config.OnBreach
// (rate-limited). The nr layer chains it into the flight recorder's
// AutoDump so the seconds leading up to the breach are preserved.
type BreachEvent struct {
	When   time.Time `json:"when"`
	Status SLOStatus `json:"status"`
}

// sloState is the tracker's mutable state for one objective.
type sloState struct {
	slo           SLO
	breached      uint64
	total         uint64
	lastBreach    time.Time
	lastP99       time.Duration
	lastP999      time.Duration
	lastBreachedW bool
}

// checkSLOLocked judges the window (prev, cur) against every objective,
// returning the breach event to fire (rate-limited) if any objective
// breached. Caller holds c.mu.
//
//nr:noalloc
func (c *Collector) checkSLOLocked(prev, cur *sample, now time.Time) (BreachEvent, bool) {
	var (
		ev   BreachEvent
		fire bool
	)
	for i := range c.slo {
		st := &c.slo[i]
		class := st.slo.Class
		if class >= obs.NumOpClasses {
			continue
		}
		ch, ph := &cur.cum.Latency[class], &prev.cum.Latency[class]
		if histogram.DeltaCount(ch, ph) == 0 {
			continue // no traffic: nothing to judge
		}
		st.total++
		st.lastP99 = histogram.DeltaPercentile(ch, ph, 99)
		st.lastP999 = histogram.DeltaPercentile(ch, ph, 99.9)
		breached := (st.slo.P99 > 0 && st.lastP99 > st.slo.P99) ||
			(st.slo.P999 > 0 && st.lastP999 > st.slo.P999)
		st.lastBreachedW = breached
		if !breached {
			continue
		}
		st.breached++
		st.lastBreach = now
		if !fire && now.Sub(c.lastFire) >= c.cfg.BreachMinInterval {
			c.lastFire = now
			ev = BreachEvent{When: now, Status: st.status()}
			fire = true
		}
	}
	return ev, fire
}

// status renders the state as an SLOStatus.
func (st *sloState) status() SLOStatus {
	s := SLOStatus{
		Class:           st.slo.Class.String(),
		P99Ns:           st.slo.P99.Nanoseconds(),
		P999Ns:          st.slo.P999.Nanoseconds(),
		CurrentP99Ns:    st.lastP99.Nanoseconds(),
		CurrentP999Ns:   st.lastP999.Nanoseconds(),
		Breached:        st.lastBreachedW,
		BreachedWindows: st.breached,
		TotalWindows:    st.total,
		LastBreach:      st.lastBreach,
	}
	if st.total > 0 {
		s.BudgetBurn = (float64(st.breached) / float64(st.total)) / st.slo.Budget
	}
	return s
}

// SLOStatuses reports every tracked objective's current status, in the
// order they were configured (nil when none are).
func (c *Collector) SLOStatuses() []SLOStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.slo) == 0 {
		return nil
	}
	out := make([]SLOStatus, len(c.slo))
	for i := range c.slo {
		out[i] = c.slo[i].status()
	}
	return out
}
