package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCountDistBasics(t *testing.T) {
	var d CountDist
	if d.Count() != 0 || d.Mean() != 0 || d.Percentile(99) != 0 {
		t.Fatal("zero CountDist not empty")
	}
	for _, v := range []uint64{0, 1, 1, 2, 3, 4, 8, 100} {
		d.Record(v)
	}
	if d.Count() != 8 {
		t.Errorf("Count = %d, want 8", d.Count())
	}
	if d.Sum() != 119 {
		t.Errorf("Sum = %d, want 119", d.Sum())
	}
	if d.Max() != 100 {
		t.Errorf("Max = %d, want 100", d.Max())
	}
	if got, want := d.Mean(), 119.0/8; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Power-of-two buckets report lower bounds: the p50 rank (the 4th of 8
	// observations) lands in the 2–3 bucket.
	if p := d.Percentile(50); p != 2 {
		t.Errorf("P50 = %d, want 2", p)
	}
	// P100 must land in the bucket holding the max: 100 is in [64,128).
	if p := d.Percentile(100); p != 64 {
		t.Errorf("P100 = %d, want 64", p)
	}
}

func TestCountDistPercentileWithinTwoOfExact(t *testing.T) {
	// Bucket lower bounds underestimate by at most 2x for any value.
	var d CountDist
	for v := uint64(1); v <= 1000; v++ {
		d.Record(v)
	}
	for _, p := range []float64{10, 50, 90, 99} {
		exact := uint64(p / 100 * 1000)
		got := d.Percentile(p)
		if got > exact || got*2 < exact/2 {
			t.Errorf("P%v = %d, exact %d: outside [exact/4, exact]", p, got, exact)
		}
	}
}

func TestCountDistMerge(t *testing.T) {
	var a, b CountDist
	a.Record(1)
	a.Record(5)
	b.Record(9)
	a.Merge(&b)
	if a.Count() != 3 || a.Sum() != 15 || a.Max() != 9 {
		t.Errorf("after merge: count=%d sum=%d max=%d, want 3/15/9", a.Count(), a.Sum(), a.Max())
	}
}

func TestCountDistConcurrentRecord(t *testing.T) {
	var d CountDist
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.Record(uint64(i % 64))
			}
		}()
	}
	wg.Wait()
	if d.Count() != goroutines*per {
		t.Errorf("Count = %d, want %d", d.Count(), goroutines*per)
	}
	if d.Max() != 63 {
		t.Errorf("Max = %d, want 63", d.Max())
	}
}

func TestMetricsSnapshotAggregatesAcrossNodes(t *testing.T) {
	m := NewMetrics(2)
	m.OpDone(0, OpRead, 100*time.Nanosecond)
	m.OpDone(1, OpRead, 200*time.Nanosecond)
	m.OpDone(0, OpUpdate, time.Microsecond)
	m.CombineEnd(0, 3, 3, time.Microsecond)
	m.CombineEnd(1, 5, 5, time.Microsecond)
	m.ReaderRefresh(1, 7)
	m.Help(0, 4)
	m.LogTailRetry(0, 2)
	m.WriterWait(1, 9)
	m.Stall(0, time.Millisecond)
	m.PanicContained(1, 42)

	s := m.Snapshot()
	if s.Read.Count != 2 {
		t.Errorf("merged read count = %d, want 2", s.Read.Count)
	}
	if s.Update.Count != 1 {
		t.Errorf("merged update count = %d, want 1", s.Update.Count)
	}
	if s.Batch.Count != 2 || s.Batch.Max != 5 {
		t.Errorf("merged batch dist = %+v, want count 2 max 5", s.Batch)
	}
	if len(s.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(s.Nodes))
	}
	n0, n1 := s.Nodes[0], s.Nodes[1]
	if n0.CombineRounds != 1 || n1.CombineRounds != 1 {
		t.Errorf("combine rounds = %d/%d, want 1/1", n0.CombineRounds, n1.CombineRounds)
	}
	if n1.ReaderRefreshes != 1 || n1.RefreshedEntries != 7 {
		t.Errorf("node1 refresh = %d/%d, want 1/7", n1.ReaderRefreshes, n1.RefreshedEntries)
	}
	if n0.Helps != 1 || n0.HelpedEntries != 4 {
		t.Errorf("node0 helps = %d/%d, want 1/4", n0.Helps, n0.HelpedEntries)
	}
	if n0.TailRetryEvents != 1 || n0.TailRetries != 2 {
		t.Errorf("node0 tail retries = %d/%d, want 1/2", n0.TailRetryEvents, n0.TailRetries)
	}
	if n1.WriterWaits != 1 || n1.WriterWaitSpins != 9 {
		t.Errorf("node1 writer waits = %d/%d, want 1/9", n1.WriterWaits, n1.WriterWaitSpins)
	}
	if n0.Stalls != 1 || n1.Panics != 1 {
		t.Errorf("stalls/panics = %d/%d, want 1/1", n0.Stalls, n1.Panics)
	}
}

func TestMetricsOutOfRangeNodeClampsToZero(t *testing.T) {
	m := NewMetrics(2)
	m.OpDone(-1, OpRead, time.Nanosecond)
	m.OpDone(99, OpUpdate, time.Nanosecond)
	s := m.Snapshot()
	if s.Nodes[0].Read.Count != 1 || s.Nodes[0].Update.Count != 1 {
		t.Errorf("clamped events not on node 0: %+v", s.Nodes[0])
	}
}

// recorder counts events per hook for composition tests.
type recorder struct {
	Nop
	combines, ops int
}

func (r *recorder) CombineStart(int)                   { r.combines++ }
func (r *recorder) OpDone(int, OpClass, time.Duration) { r.ops++ }

func TestCombineAndFindMetrics(t *testing.T) {
	if Combine() != nil {
		t.Error("Combine() != nil")
	}
	if Combine(nil, nil) != nil {
		t.Error("Combine(nil, nil) != nil")
	}
	r := &recorder{}
	if got := Combine(nil, r); got != Observer(r) {
		t.Error("Combine with one live observer should return it unwrapped")
	}
	m := NewMetrics(1)
	o := Combine(r, m)
	if _, isMulti := o.(Multi); !isMulti {
		t.Fatalf("Combine(two) = %T, want Multi", o)
	}
	// Fan-out reaches both.
	o.CombineStart(0)
	o.OpDone(0, OpRead, time.Nanosecond)
	if r.combines != 1 || r.ops != 1 {
		t.Errorf("recorder missed events: %+v", r)
	}
	if s := m.Snapshot(); s.Read.Count != 1 {
		t.Errorf("metrics missed OpDone: read count = %d", s.Read.Count)
	}
	// FindMetrics unwraps any composition shape.
	if FindMetrics(o) != m {
		t.Error("FindMetrics(Multi) failed")
	}
	if FindMetrics(m) != m {
		t.Error("FindMetrics(direct) failed")
	}
	if FindMetrics(r) != nil {
		t.Error("FindMetrics(non-metrics) != nil")
	}
	if FindMetrics(nil) != nil {
		t.Error("FindMetrics(nil) != nil")
	}
}

func TestOpClassString(t *testing.T) {
	if OpRead.String() != "read" || OpUpdate.String() != "update" || NumOpClasses.String() != "unknown" {
		t.Error("OpClass.String mismatch")
	}
}
