// Cumulative bucket-level captures of the Metrics observer, for consumers
// that need *windowed* views: the telemetry collector (internal/obs/tsdb)
// snapshots a Cum on every cadence tick and subtracts consecutive captures
// to get per-window rates and tail latencies, something the summary-only
// Snapshot cannot provide (percentiles do not subtract; raw buckets do).
//
// Everything here is allocation-free after the first capture sized the
// per-node slice: a Cum is reused tick after tick, which is what lets the
// collector's hot path stay //nr:noalloc.
package obs

import "github.com/asplos17/nr/internal/histogram"

// CountCum is a cumulative bucket-level capture of a CountDist, the
// CountDist analogue of histogram.Cum: plain copies of the power-of-two
// buckets plus total and sum. Two captures subtract bucket-wise into the
// distribution of the interval between them.
type CountCum struct {
	Counts [distBuckets]uint64
	Total  uint64
	Sum    uint64
}

// Reset empties c for reuse.
//
//nr:noalloc
func (c *CountCum) Reset() { *c = CountCum{} }

// Add accumulates d's current buckets into c (buckets read individually
// while recording continues, approximately one instant).
//
//nr:noalloc
func (c *CountCum) Add(d *CountDist) {
	for b := 0; b < distBuckets; b++ {
		c.Counts[b] += d.counts[b].Load()
	}
	c.Total += d.total.Load()
	c.Sum += d.sum.Load()
}

// CountDelta returns the number of observations between prev and cur
// (0 when the captures are misordered).
func CountDelta(cur, prev *CountCum) uint64 {
	if cur.Total < prev.Total {
		return 0
	}
	return cur.Total - prev.Total
}

// CountDeltaMean returns the mean observed value between prev and cur
// (0 with no observations).
func CountDeltaMean(cur, prev *CountCum) float64 {
	n := CountDelta(cur, prev)
	if n == 0 || cur.Sum < prev.Sum {
		return 0
	}
	return float64(cur.Sum-prev.Sum) / float64(n)
}

// CountDeltaPercentile returns a lower bound on the p-th percentile
// (0 < p <= 100) of the observations between the two captures.
//
//nr:noalloc
func CountDeltaPercentile(cur, prev *CountCum, p float64) uint64 {
	n := CountDelta(cur, prev)
	if n == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(n))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b := 0; b < distBuckets; b++ {
		c, pc := cur.Counts[b], prev.Counts[b]
		if c > pc {
			seen += c - pc
		}
		if seen >= rank {
			return bucketLow(b)
		}
	}
	return bucketLow(distBuckets - 1)
}

// NodeCum is one node's slice of a Cum capture: the cumulative counters a
// windowed view derives per-node rates from.
type NodeCum struct {
	// ReadOps/UpdateOps are the per-class operation totals (the latency
	// histograms' counts — one OpDone per completed operation).
	ReadOps   uint64
	UpdateOps uint64
	// CombineRounds/CombineNanos mirror the node's round counters.
	CombineRounds uint64
	CombineNanos  uint64
	// ReaderRefreshes counts reads that replayed the log themselves.
	ReaderRefreshes uint64
	// ReaderPressure is the cumulative reader-lock acquisition count
	// reported by the node's combiners (see Observer.ReaderPressure).
	ReaderPressure uint64
}

// Cum is a cumulative bucket-level capture of a whole Metrics observer:
// per-class latency buckets and the batch-size distribution merged across
// nodes, plus per-node counters. Captures reuse the Nodes slice, so a Cum
// held across ticks costs one allocation ever.
type Cum struct {
	Latency [NumOpClasses]histogram.Cum
	Batch   CountCum
	Nodes   []NodeCum
}

// ReadCum captures the observer's cumulative state into dst, resetting it
// first. The capture allocates only if dst.Nodes is too small for the
// observer's node count.
//
//nr:noalloc
func (m *Metrics) ReadCum(dst *Cum) {
	for c := range dst.Latency {
		dst.Latency[c].Reset()
	}
	dst.Batch.Reset()
	if cap(dst.Nodes) < len(m.nodes) {
		dst.Nodes = make([]NodeCum, len(m.nodes)) //nr:allocok sizes once, reused forever after
	}
	dst.Nodes = dst.Nodes[:len(m.nodes)]
	for i := range m.nodes {
		n := &m.nodes[i]
		dst.Latency[OpRead].Add(&n.latency[OpRead])
		dst.Latency[OpUpdate].Add(&n.latency[OpUpdate])
		dst.Batch.Add(&n.batch)
		dst.Nodes[i] = NodeCum{
			ReadOps:         n.latency[OpRead].Count(),
			UpdateOps:       n.latency[OpUpdate].Count(),
			CombineRounds:   n.combineRounds.Load(),
			CombineNanos:    n.combineNanos.Load(),
			ReaderRefreshes: n.readerRefreshes.Load(),
			ReaderPressure:  n.readerAcquires.Load(),
		}
	}
}

// AddCum accumulates src into dst field-wise (latency and batch buckets
// added, per-node counters added index-wise, dst.Nodes grown as needed) —
// the merge a sharded instance uses to fold S per-shard observers into one
// windowed view. Unlike ReadCum it does not reset dst first.
func AddCum(dst, src *Cum) {
	for c := range dst.Latency {
		for i := range dst.Latency[c].Counts {
			dst.Latency[c].Counts[i] += src.Latency[c].Counts[i]
		}
		dst.Latency[c].Total += src.Latency[c].Total
		dst.Latency[c].Sum += src.Latency[c].Sum
	}
	for b := range dst.Batch.Counts {
		dst.Batch.Counts[b] += src.Batch.Counts[b]
	}
	dst.Batch.Total += src.Batch.Total
	dst.Batch.Sum += src.Batch.Sum
	if len(dst.Nodes) < len(src.Nodes) {
		if cap(dst.Nodes) < len(src.Nodes) {
			grown := make([]NodeCum, len(src.Nodes)) //nr:allocok sizes once, reused forever after
			copy(grown, dst.Nodes)
			dst.Nodes = grown
		} else {
			// Reuse capacity; the tail holds values from a prior window and
			// must be zeroed before the index-wise += below.
			tail := dst.Nodes[len(dst.Nodes):len(src.Nodes)]
			for i := range tail {
				tail[i] = NodeCum{}
			}
			dst.Nodes = dst.Nodes[:len(src.Nodes)]
		}
	}
	for i := range src.Nodes {
		d, s := &dst.Nodes[i], &src.Nodes[i]
		d.ReadOps += s.ReadOps
		d.UpdateOps += s.UpdateOps
		d.CombineRounds += s.CombineRounds
		d.CombineNanos += s.CombineNanos
		d.ReaderRefreshes += s.ReaderRefreshes
		d.ReaderPressure += s.ReaderPressure
	}
}
