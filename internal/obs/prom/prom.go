// Package prom is a hand-rolled Prometheus text-exposition (v0.0.4)
// builder: enough of the format — HELP/TYPE lines, label escaping,
// cumulative `le` buckets with _sum/_count — to publish NR's unified
// metrics snapshot on a /metrics endpoint, with no dependency beyond the
// standard library. Families are emitted in registration order, samples in
// append order, so the output is deterministic and golden-testable.
package prom

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one name="value" pair. Order is preserved as given.
type Label struct {
	Name  string
	Value string
}

// sample is one series: a label set and a value.
type sample struct {
	labels []Label
	value  float64
}

// family is one metric family: HELP/TYPE plus its samples.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	samples []sample
}

// Exposition accumulates families and renders the text format. Zero value
// is not ready; use New.
type Exposition struct {
	families []*family
	index    map[string]*family
}

// New returns an empty Exposition.
func New() *Exposition {
	return &Exposition{index: make(map[string]*family)}
}

// at returns the named family, creating it with help/typ on first use.
// Help and type of an existing family are not rewritten: first writer wins,
// keeping HELP/TYPE unique per family however many label sets are added.
func (e *Exposition) at(name, help, typ string) *family {
	if f, ok := e.index[name]; ok {
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	e.index[name] = f
	e.families = append(e.families, f)
	return f
}

// Counter appends one counter series. Counters are cumulative; use _total
// suffixed names per convention.
func (e *Exposition) Counter(name, help string, v float64, labels ...Label) {
	f := e.at(name, help, "counter")
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Gauge appends one gauge series.
func (e *Exposition) Gauge(name, help string, v float64, labels ...Label) {
	f := e.at(name, help, "gauge")
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// HistogramData is a rendered histogram: cumulative bucket counts aligned
// with UpperBounds (exclusive of +Inf, which Histogram adds from Count),
// plus the observation count and sum.
type HistogramData struct {
	// UpperBounds are the `le` boundaries, ascending, +Inf excluded.
	UpperBounds []float64
	// CumCounts[i] counts observations <= UpperBounds[i].
	CumCounts []uint64
	Count     uint64
	Sum       float64
}

// Histogram appends one histogram series set: one `le` bucket sample per
// boundary plus +Inf, then _sum and _count. Bucket counts are clamped
// monotone non-decreasing (racy capture of live counters can momentarily
// invert adjacent buckets).
func (e *Exposition) Histogram(name, help string, h HistogramData, labels ...Label) {
	f := e.at(name, help, "histogram")
	bucket := func(le string, v float64) sample {
		ls := append([]Label{{Name: "__suffix", Value: "_bucket"}}, labels...)
		return sample{labels: append(ls, Label{"le", le}), value: v}
	}
	var prev uint64
	for i, ub := range h.UpperBounds {
		c := h.CumCounts[i]
		if c < prev {
			c = prev
		}
		if c > h.Count {
			c = h.Count
		}
		prev = c
		f.samples = append(f.samples, bucket(formatFloat(ub), float64(c)))
	}
	f.samples = append(f.samples, bucket("+Inf", float64(h.Count)))
	// _sum and _count render under suffixed names within the same family.
	f.samples = append(f.samples,
		sample{labels: append([]Label{{Name: "__suffix", Value: "_sum"}}, labels...), value: h.Sum},
		sample{labels: append([]Label{{Name: "__suffix", Value: "_count"}}, labels...), value: float64(h.Count)},
	)
}

// ContentType is the exposition format's content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo renders the exposition. Implements io.WriterTo.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, f := range e.families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			name := f.name
			labels := s.labels
			if len(labels) > 0 && labels[0].Name == "__suffix" {
				name += labels[0].Value
				labels = labels[1:]
			}
			b.WriteString(name)
			if len(labels) > 0 {
				b.WriteByte('{')
				for i, l := range labels {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%s=%q", l.Name, escapeLabel(l.Value))
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.value))
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// formatFloat renders a value the way Prometheus expects: integers without
// exponent noise, +Inf spelled literally.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes label values for %q-adjacent rendering: %q already
// handles quotes and control characters, so only pass-through is needed;
// kept as a hook for future non-UTF8 handling.
func escapeLabel(s string) string { return s }
