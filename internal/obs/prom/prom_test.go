package prom

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/obs"
	"github.com/asplos17/nr/internal/obs/tsdb"
)

var update = flag.Bool("update", false, "rewrite the golden exposition file")

// buildExposition renders a fully-populated exposition: server families,
// the unified snapshot with WAL gauges, distribution histograms, and SLO
// status — every family the live /metrics endpoint can emit.
func buildExposition() *Exposition {
	e := New()
	e.Gauge("nrredis_uptime_seconds", "Seconds since the server started.", 125)
	e.Gauge("nrredis_connected_clients", "Currently connected clients.", 3)
	e.Counter("nrredis_connections_total", "Connections accepted since start.", 17)
	e.Counter("nrredis_commands_total", "Commands processed since start.", 1234567)

	m := core.Metrics{
		Stats: core.Stats{
			ReadOps: 1100000, UpdateOps: 140000, Combines: 9000, CombinedOps: 131000,
			ReaderRefreshes: 2500, HelpedEntries: 1200, ParallelOps: 700,
			ReaderAcquires: 180000, Panics: 1, Stalls: 2,
			CrossOps: 450, WriterAcquires: 12000,
		},
		Log: core.LogGauges{Tail: 5000, Completed: 4990, MinTail: 4800, Size: 65536, Occupancy: 0.003},
		Logs: []core.LogGauges{
			{Tail: 3000, Completed: 2995, MinTail: 2900, Size: 32768, Occupancy: 0.003},
			{Tail: 2000, Completed: 1995, MinTail: 1900, Size: 32768, Occupancy: 0.002},
		},
		Replicas: []core.ReplicaGauges{
			{Node: 0, LocalTail: 4995, CompletedLag: 2, Registered: 4, ReaderAcquires: 95000,
				WriterAcquires: 6500, LingerWindowNs: 15000, Logs: []core.ReplicaLogGauges{
					{Log: 0, LocalTail: 2998, CompletedLag: 1},
					{Log: 1, LocalTail: 1997, CompletedLag: 1},
				}},
			{Node: 1, LocalTail: 4983, CompletedLag: 7, Registered: 4, ReaderAcquires: 85000,
				WriterAcquires: 5500, LingerWindowNs: 11000, Logs: []core.ReplicaLogGauges{
					{Log: 0, LocalTail: 2990, CompletedLag: 5},
					{Log: 1, LocalTail: 1993, CompletedLag: 2},
				}},
		},
		Persist: &core.PersistGauges{
			Appends: 140000, Pages: 3000, Fsyncs: 321, FsyncNanos: 640000000,
			Rotations: 2, SealStalls: 1, DurableIndex: 4978, DurableLag: 12,
		},
	}
	AppendMetrics(e, &m)

	// Distributions through the real observer so bucket placement matches
	// production exactly.
	om := obs.NewMetrics(2)
	for i := 0; i < 900; i++ {
		om.OpDone(0, obs.OpRead, 800*time.Nanosecond)
	}
	for i := 0; i < 90; i++ {
		om.OpDone(1, obs.OpRead, 40*time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		om.OpDone(0, obs.OpRead, 3*time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		om.OpDone(0, obs.OpUpdate, 9*time.Microsecond)
	}
	for i := 0; i < 50; i++ {
		om.CombineEnd(0, 8, 8, time.Microsecond)
		om.CombineEnd(1, 31, 31, 2*time.Microsecond)
	}
	var cum obs.Cum
	om.ReadCum(&cum)
	AppendCum(e, &cum)

	AppendSLO(e, []tsdb.SLOStatus{
		{
			Class: "read", P99Ns: 10000, P999Ns: 100000,
			CurrentP99Ns: 12400, CurrentP999Ns: 93000,
			Breached: true, BreachedWindows: 3, TotalWindows: 60, BudgetBurn: 5,
		},
		{
			Class: "update", P99Ns: 1000000,
			CurrentP99Ns:    51000,
			BreachedWindows: 0, TotalWindows: 60, BudgetBurn: 0,
		},
	})
	return e
}

// TestGoldenExposition pins the full exposition byte-for-byte: metric names
// are a public contract (dashboards reference them), so any drift must be a
// conscious golden update (-update), not an accident.
func TestGoldenExposition(t *testing.T) {
	var b strings.Builder
	if _, err := buildExposition().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden (run with -update if intentional)\ngot:\n%s", got)
	}

	// The golden output must itself satisfy the lint the CI endpoint check
	// uses.
	if err := Lint(got); err != nil {
		t.Errorf("golden exposition fails lint: %v", err)
	}
}

// TestExpositionCoversSnapshot walks the unified snapshot's field names and
// verifies each surfaced family appears in the exposition — the acceptance
// gate that the endpoint serves every counter/gauge/histogram in the
// unified snapshot.
func TestExpositionCoversSnapshot(t *testing.T) {
	var b strings.Builder
	_, _ = buildExposition().WriteTo(&b)
	text := b.String()
	for _, family := range []string{
		// Stats counters.
		"nr_read_ops_total", "nr_update_ops_total", "nr_combines_total",
		"nr_combined_ops_total", "nr_reader_refreshes_total", "nr_helped_entries_total",
		"nr_parallel_ops_total", "nr_reader_acquires_total", "nr_panics_total", "nr_stalls_total",
		// Log and health gauges.
		"nr_log_tail", "nr_log_completed", "nr_log_min_tail", "nr_log_size",
		"nr_log_occupancy", "nr_poisoned",
		// Per-replica gauges.
		"nr_replica_local_tail", "nr_replica_completed_lag", "nr_replica_registered",
		"nr_replica_reader_acquires", "nr_replica_linger_window_ns",
		// WAL durability.
		"nr_wal_appends_total", "nr_wal_pages_total", "nr_wal_fsyncs_total",
		"nr_wal_fsync_seconds_total", "nr_wal_rotations_total", "nr_wal_seal_stalls_total",
		"nr_wal_durable_index", "nr_wal_durable_lag",
		// Distributions.
		"nr_op_latency_seconds_bucket", "nr_op_latency_seconds_sum", "nr_op_latency_seconds_count",
		"nr_combiner_batch_size_bucket",
		// SLOs.
		"nr_slo_target_p99_seconds", "nr_slo_current_p99_seconds", "nr_slo_breached",
		"nr_slo_breached_windows_total", "nr_slo_windows_total", "nr_slo_budget_burn",
	} {
		if !strings.Contains(text, "\n"+family) && !strings.HasPrefix(text, family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
	if !strings.Contains(text, `nr_op_latency_seconds_bucket{class="read",le="+Inf"} 1000`) {
		t.Errorf("read latency +Inf bucket should count all 1000 observations:\n%s", text)
	}
	if !strings.Contains(text, `nr_replica_completed_lag{node="1"} 7`) {
		t.Errorf("per-node gauge with node label missing")
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{
			"sample before HELP",
			"foo 1\n",
			"before HELP",
		},
		{
			"duplicate series",
			"# HELP foo x\n# TYPE foo counter\nfoo 1\nfoo 2\n",
			"duplicate series",
		},
		{
			"duplicate HELP",
			"# HELP foo x\n# HELP foo y\n",
			"duplicate HELP",
		},
		{
			"histogram without +Inf",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 5\n",
			"missing +Inf",
		},
		{
			"non-cumulative buckets",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n",
			"not cumulative",
		},
		{
			"+Inf disagrees with _count",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 6\nh_sum 1\n",
			"_count",
		},
	}
	for _, tc := range cases {
		err := Lint(tc.text)
		if err == nil {
			t.Errorf("%s: lint passed, want error containing %q", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	if err := Lint("# HELP ok x\n# TYPE ok gauge\nok{a=\"b\"} 1\nok{a=\"c\"} 2\n"); err != nil {
		t.Errorf("valid exposition flagged: %v", err)
	}
}
