// NR-specific families: folding the unified core.Metrics snapshot, the
// telemetry collector's cumulative distribution buckets, and SLO statuses
// into stable Prometheus names. Names are part of the public contract —
// dashboards reference them — so changes here are breaking changes; the
// golden exposition test pins them.
package prom

import (
	"strconv"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/histogram"
	"github.com/asplos17/nr/internal/obs"
	"github.com/asplos17/nr/internal/obs/tsdb"
)

// AppendMetrics folds the unified snapshot into e: Stats counters, log and
// per-replica gauges, health, and (when present) the WAL's durability
// gauges. Observed distributions are appended separately via AppendCum —
// they need raw buckets, which the summary snapshot does not carry.
func AppendMetrics(e *Exposition, m *core.Metrics) {
	e.Counter("nr_read_ops_total", "Read-only operations executed.", float64(m.Stats.ReadOps))
	e.Counter("nr_update_ops_total", "Update operations executed through the shared log.", float64(m.Stats.UpdateOps))
	e.Counter("nr_combines_total", "Flat-combining rounds executed.", float64(m.Stats.Combines))
	e.Counter("nr_combined_ops_total", "Update operations appended via combining.", float64(m.Stats.CombinedOps))
	e.Counter("nr_reader_refreshes_total", "Reads that replayed the log into their replica themselves.", float64(m.Stats.ReaderRefreshes))
	e.Counter("nr_helped_entries_total", "Log entries applied to other nodes' replicas by helpers.", float64(m.Stats.HelpedEntries))
	e.Counter("nr_parallel_ops_total", "Update operations handed to posting goroutines by parallel combining.", float64(m.Stats.ParallelOps))
	e.Counter("nr_reader_acquires_total", "Read-lock acquisitions across all replicas.", float64(m.Stats.ReaderAcquires))
	e.Counter("nr_panics_total", "User Execute panics contained.", float64(m.Stats.Panics))
	e.Counter("nr_stalls_total", "Combiner stalls flagged by the watchdog.", float64(m.Stats.Stalls))
	e.Counter("nr_cross_ops_total", "Cross-conflict-class updates serialized through the ticket barrier.", float64(m.Stats.CrossOps))
	e.Counter("nr_writer_acquires_total", "Replica writer-lock acquisitions across all replicas and logs.", float64(m.Stats.WriterAcquires))

	e.Gauge("nr_log_tail", "Next unreserved absolute log index (sum over logs when multi-log).", float64(m.Log.Tail))
	e.Gauge("nr_log_completed", "Completed-tail log index (sum over logs when multi-log).", float64(m.Log.Completed))
	e.Gauge("nr_log_min_tail", "Smallest replica local tail (recyclable frontier; sum over logs).", float64(m.Log.MinTail))
	e.Gauge("nr_log_size", "Shared log capacity in entries (sum over logs).", float64(m.Log.Size))
	e.Gauge("nr_log_occupancy", "Fraction of the log holding entries some replica still needs (max over logs).", m.Log.Occupancy)

	// Per-conflict-class breakdown, only when the instance actually runs
	// multiple logs: single-log expositions keep their pre-multi-log shape.
	if len(m.Logs) > 1 {
		for c, lg := range m.Logs {
			log := Label{"log", strconv.Itoa(c)}
			e.Gauge("nr_log_class_tail", "Next unreserved absolute index of one conflict class's log.", float64(lg.Tail), log)
			e.Gauge("nr_log_class_completed", "Completed-tail index of one conflict class's log.", float64(lg.Completed), log)
			e.Gauge("nr_log_class_min_tail", "Smallest replica local tail of one conflict class's log.", float64(lg.MinTail), log)
			e.Gauge("nr_log_class_occupancy", "Occupancy of one conflict class's log.", lg.Occupancy, log)
		}
	}

	poisoned := 0.0
	if m.Health.Poisoned {
		poisoned = 1
	}
	e.Gauge("nr_poisoned", "1 when replicas have been observed to diverge (sticky).", poisoned)

	for _, r := range m.Replicas {
		node := Label{"node", strconv.Itoa(r.Node)}
		e.Gauge("nr_replica_local_tail", "Next log index the replica will apply (sum over logs).", float64(r.LocalTail), node)
		e.Gauge("nr_replica_completed_lag", "Completed entries the replica has not yet absorbed (sum over logs).", float64(r.CompletedLag), node)
		e.Gauge("nr_replica_registered", "Handles bound to the replica's node.", float64(r.Registered), node)
		e.Gauge("nr_replica_reader_acquires", "Cumulative read-lock acquisitions on the replica.", float64(r.ReaderAcquires), node)
		e.Gauge("nr_replica_writer_acquires", "Cumulative writer-lock acquisitions on the replica (batch-replay witness).", float64(r.WriterAcquires), node)
		e.Gauge("nr_replica_linger_window_ns", "Current adaptive linger window, nanoseconds (max over logs).", float64(r.LingerWindowNs), node)
		if len(r.Logs) > 1 {
			for _, lg := range r.Logs {
				nl := []Label{node, {"log", strconv.Itoa(lg.Log)}}
				e.Gauge("nr_replica_log_local_tail", "Next index the replica will apply from one conflict class's log.", float64(lg.LocalTail), nl...)
				e.Gauge("nr_replica_log_completed_lag", "Completed entries of one class the replica has not absorbed.", float64(lg.CompletedLag), nl...)
			}
		}
	}

	if p := m.Persist; p != nil {
		e.Counter("nr_wal_appends_total", "Operations appended to the write-ahead log.", float64(p.Appends))
		e.Counter("nr_wal_pages_total", "WAL page flushes.", float64(p.Pages))
		e.Counter("nr_wal_fsyncs_total", "WAL fsync calls.", float64(p.Fsyncs))
		e.Counter("nr_wal_fsync_seconds_total", "Total time inside WAL fsync.", float64(p.FsyncNanos)/1e9)
		e.Counter("nr_wal_rotations_total", "WAL segment rotations.", float64(p.Rotations))
		e.Counter("nr_wal_seal_stalls_total", "WAL appends stalled on a segment seal.", float64(p.SealStalls))
		e.Gauge("nr_wal_durable_index", "Highest log index known fsync-durable.", float64(p.DurableIndex))
		e.Gauge("nr_wal_durable_lag", "Completed operations not yet durable.", float64(p.DurableLag))
	}
}

// latencyBounds is the coarsened `le` ladder for op-latency histograms:
// powers of 4 from 64ns to ~4.3s, in seconds. Internal histograms keep 128
// fine buckets; the exposition coarsens to keep scrape size sane while
// spanning sub-microsecond reads to multi-second stalls.
var latencyBounds = func() []float64 {
	out := make([]float64, 0, 14)
	ns := 64.0
	for i := 0; i < 14; i++ {
		out = append(out, ns/1e9)
		ns *= 4
	}
	return out
}()

// latencyData coarsens one internal cumulative capture onto latencyBounds.
func latencyData(c *histogram.Cum) HistogramData {
	d := HistogramData{
		UpperBounds: latencyBounds,
		CumCounts:   make([]uint64, len(latencyBounds)),
		Count:       c.Total,
		Sum:         float64(c.Sum) / 1e9,
	}
	for i := 0; i < histogram.NumBuckets; i++ {
		if c.Counts[i] == 0 {
			continue
		}
		low := float64(histogram.BucketLower(i)) / 1e9
		for b, ub := range latencyBounds {
			if low <= ub {
				d.CumCounts[b] += c.Counts[i]
			}
		}
	}
	return d
}

// batchBounds is the `le` ladder for the combiner batch-size histogram:
// powers of two matching obs.CountDist's native buckets, 1..1024.
var batchBounds = func() []float64 {
	out := make([]float64, 0, 11)
	for v := 1.0; v <= 1024; v *= 2 {
		out = append(out, v)
	}
	return out
}()

// batchData renders a CountCum capture onto batchBounds. CountDist bucket b
// holds values with bits.Len64(v)==b, so bucket b's low edge 1<<(b-1) is
// the value attributed to its observations.
func batchData(c *obs.CountCum) HistogramData {
	d := HistogramData{
		UpperBounds: batchBounds,
		CumCounts:   make([]uint64, len(batchBounds)),
		Count:       c.Total,
		Sum:         float64(c.Sum),
	}
	for b, n := range c.Counts {
		if n == 0 {
			continue
		}
		low := 0.0
		if b > 0 {
			low = float64(uint64(1) << (b - 1))
		}
		for i, ub := range batchBounds {
			if low <= ub {
				d.CumCounts[i] += n
			}
		}
	}
	return d
}

// AppendCum folds the telemetry collector's cumulative distribution capture
// into e: per-class op-latency histograms and the combiner batch-size
// histogram.
func AppendCum(e *Exposition, c *obs.Cum) {
	e.Histogram("nr_op_latency_seconds", "End-to-end operation latency by class.",
		latencyData(&c.Latency[obs.OpRead]), Label{"class", "read"})
	e.Histogram("nr_op_latency_seconds", "End-to-end operation latency by class.",
		latencyData(&c.Latency[obs.OpUpdate]), Label{"class", "update"})
	e.Histogram("nr_combiner_batch_size", "Operations per non-empty combining round.",
		batchData(&c.Batch))
}

// AppendSLO folds SLO statuses into e.
func AppendSLO(e *Exposition, statuses []tsdb.SLOStatus) {
	for _, s := range statuses {
		class := Label{"class", s.Class}
		e.Gauge("nr_slo_target_p99_seconds", "Configured per-window p99 objective.", float64(s.P99Ns)/1e9, class)
		e.Gauge("nr_slo_target_p999_seconds", "Configured per-window p999 objective.", float64(s.P999Ns)/1e9, class)
		e.Gauge("nr_slo_current_p99_seconds", "Most recent judged window's p99.", float64(s.CurrentP99Ns)/1e9, class)
		e.Gauge("nr_slo_current_p999_seconds", "Most recent judged window's p999.", float64(s.CurrentP999Ns)/1e9, class)
		breached := 0.0
		if s.Breached {
			breached = 1
		}
		e.Gauge("nr_slo_breached", "1 when the most recent judged window breached.", breached, class)
		e.Counter("nr_slo_breached_windows_total", "Windows that breached the objective.", float64(s.BreachedWindows), class)
		e.Counter("nr_slo_windows_total", "Windows judged against the objective.", float64(s.TotalWindows), class)
		e.Gauge("nr_slo_budget_burn", "Breach fraction over error budget (1.0 = budget spent).", s.BudgetBurn, class)
	}
}
