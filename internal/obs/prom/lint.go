// Lint: a hand-rolled structural validator for the exposition output. Not
// a full openmetrics parser — it checks exactly the invariants a scraper
// trips over: HELP/TYPE present before any sample of a family, no
// duplicate series, histogram buckets cumulative-monotone with a +Inf
// bucket equal to _count. CI runs it over the live /metrics output via the
// golden test, so a family added without HELP or a broken bucket ladder
// fails the build, not the first scrape.
package prom

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates exposition text, returning the first violation found.
func Lint(text string) error {
	type familyInfo struct {
		hasHelp, hasType bool
		typ              string
	}
	families := make(map[string]*familyInfo)
	series := make(map[string]bool)
	// histogram bucket sequences keyed by series-without-le.
	type bucketSeq struct {
		les  []float64
		vals []float64
		inf  float64
		has  bool
	}
	buckets := make(map[string]*bucketSeq)
	counts := make(map[string]float64)

	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok {
				if f, exists := families[b]; exists && f.typ == "histogram" {
					return b
				}
			}
		}
		return name
	}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) < 2 || parts[1] == "" {
				return fmt.Errorf("line %d: HELP without text", lineNo)
			}
			f := families[parts[0]]
			if f == nil {
				f = &familyInfo{}
				families[parts[0]] = f
			}
			if f.hasHelp {
				return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, parts[0])
			}
			f.hasHelp = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q", lineNo, parts[1])
			}
			f := families[parts[0]]
			if f == nil {
				f = &familyInfo{}
				families[parts[0]] = f
			}
			if f.hasType {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, parts[0])
			}
			f.hasType = true
			f.typ = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		// Sample line: name{labels} value
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := base(name)
		f := families[fam]
		if f == nil || !f.hasHelp || !f.hasType {
			return fmt.Errorf("line %d: sample %s before HELP+TYPE of family %s", lineNo, name, fam)
		}
		key := name + "{" + canonicalLabels(labels) + "}"
		if series[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		series[key] = true

		if f.typ == "histogram" {
			nonLE := canonicalLabelsExcept(labels, "le")
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				bk := fam + "{" + nonLE + "}"
				seq := buckets[bk]
				if seq == nil {
					seq = &bucketSeq{}
					buckets[bk] = seq
				}
				if le == "+Inf" {
					seq.inf = value
					seq.has = true
				} else {
					f64, perr := strconv.ParseFloat(le, 64)
					if perr != nil {
						return fmt.Errorf("line %d: bad le %q", lineNo, le)
					}
					seq.les = append(seq.les, f64)
					seq.vals = append(seq.vals, value)
				}
			case strings.HasSuffix(name, "_count"):
				counts[fam+"{"+nonLE+"}"] = value
			}
		}
	}

	// Cross-family checks: every family with samples has both lines (by
	// construction above), bucket ladders monotone with +Inf == _count.
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		seq := buckets[k]
		if !seq.has {
			return fmt.Errorf("histogram %s missing +Inf bucket", k)
		}
		for i := 1; i < len(seq.les); i++ {
			if seq.les[i] <= seq.les[i-1] {
				return fmt.Errorf("histogram %s: le boundaries not ascending (%g after %g)", k, seq.les[i], seq.les[i-1])
			}
			if seq.vals[i] < seq.vals[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative (%g after %g at le=%g)", k, seq.vals[i], seq.vals[i-1], seq.les[i])
			}
		}
		if n := len(seq.vals); n > 0 && seq.inf < seq.vals[n-1] {
			return fmt.Errorf("histogram %s: +Inf bucket %g below last bucket %g", k, seq.inf, seq.vals[n-1])
		}
		if c, ok := counts[k]; ok && c != seq.inf {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", k, c, seq.inf)
		}
	}
	return nil
}

// parseSample splits one sample line into name, labels, value.
func parseSample(line string) (string, []Label, float64, error) {
	rest := line
	var name string
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name = rest[:i]
		rest = rest[i:]
	}
	var labels []Label
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated labels in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for _, pair := range splitLabels(body) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			val, err := strconv.Unquote(pair[eq+1:])
			if err != nil {
				return "", nil, 0, fmt.Errorf("malformed label value %q", pair)
			}
			labels = append(labels, Label{Name: pair[:eq], Value: val})
		}
	}
	rest = strings.TrimSpace(rest)
	var value float64
	switch rest {
	case "+Inf":
		value = inf()
	case "-Inf":
		value = -inf()
	default:
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return "", nil, 0, fmt.Errorf("malformed value %q", rest)
		}
		value = v
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, body[start:])
	return out
}

func canonicalLabels(labels []Label) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		parts = append(parts, l.Name+"="+l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func canonicalLabelsExcept(labels []Label, skip string) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name == skip {
			continue
		}
		parts = append(parts, l.Name+"="+l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func labelValue(labels []Label, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

func inf() float64 { return math.Inf(1) }
