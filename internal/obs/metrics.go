package obs

import (
	"sync/atomic"
	"time"

	"github.com/asplos17/nr/internal/histogram"
)

// Metrics is the built-in Observer: per-node, per-op-class latency
// histograms, combiner batch-size distributions, and counters for every
// hook event. All recording is lock-free; Snapshot may be called
// concurrently with recording.
type Metrics struct {
	nodes []nodeMetrics
}

// nodeMetrics aggregates one node's events. Histograms are embedded values
// so a Metrics is a single allocation per node.
type nodeMetrics struct {
	latency [NumOpClasses]histogram.Histogram
	batch   CountDist
	appends CountDist

	combineRounds    atomic.Uint64
	combineNanos     atomic.Uint64
	lingerRounds     atomic.Uint64
	lingerNanos      atomic.Uint64
	lingerGained     atomic.Uint64
	parallelRounds   atomic.Uint64
	parallelOps      atomic.Uint64
	readerRefreshes  atomic.Uint64
	refreshedEntries atomic.Uint64
	helps            atomic.Uint64
	helpedEntries    atomic.Uint64
	tailRetryEvents  atomic.Uint64
	tailRetries      atomic.Uint64
	writerWaits      atomic.Uint64
	writerWaitSpins  atomic.Uint64
	pressureRounds   atomic.Uint64
	readerAcquires   atomic.Uint64
	stalls           atomic.Uint64
	panics           atomic.Uint64
}

// NewMetrics returns a Metrics observer for a topology with the given
// number of NUMA nodes.
func NewMetrics(nodes int) *Metrics {
	if nodes < 1 {
		nodes = 1
	}
	return &Metrics{nodes: make([]nodeMetrics, nodes)}
}

// Nodes returns the number of nodes the observer tracks.
func (m *Metrics) Nodes() int { return len(m.nodes) }

// at returns the node's metrics, clamping out-of-range ids (node -1 is
// used by handles registered outside the topology) to node 0.
func (m *Metrics) at(node int) *nodeMetrics {
	if node < 0 || node >= len(m.nodes) {
		node = 0
	}
	return &m.nodes[node]
}

// CombineStart implements Observer. Round accounting happens in CombineEnd.
func (m *Metrics) CombineStart(node int) {}

// CombineEnd implements Observer. Rounds that collected nothing count
// toward combineRounds but not the batch distribution, so the distribution
// describes batch sizes of rounds that did work (its Count matches
// core.Stats.Combines, its Sum matches CombinedOps).
func (m *Metrics) CombineEnd(node, batch, appended int, elapsed time.Duration) {
	n := m.at(node)
	n.combineRounds.Add(1)
	n.combineNanos.Add(uint64(elapsed.Nanoseconds()))
	if batch > 0 {
		n.batch.Record(uint64(batch))
		n.appends.Record(uint64(appended))
	}
}

// ReaderRefresh implements Observer.
func (m *Metrics) ReaderRefresh(node, entries int) {
	n := m.at(node)
	n.readerRefreshes.Add(1)
	n.refreshedEntries.Add(uint64(entries))
}

// Help implements Observer.
func (m *Metrics) Help(node, entries int) {
	n := m.at(node)
	n.helps.Add(1)
	n.helpedEntries.Add(uint64(entries))
}

// LogTailRetry implements Observer.
func (m *Metrics) LogTailRetry(node, retries int) {
	n := m.at(node)
	n.tailRetryEvents.Add(1)
	n.tailRetries.Add(uint64(retries))
}

// WriterWait implements Observer.
func (m *Metrics) WriterWait(node, spins int) {
	n := m.at(node)
	n.writerWaits.Add(1)
	n.writerWaitSpins.Add(uint64(spins))
}

// BatchRound implements Observer. Rounds with a zero window and no parallel
// handoff (an adaptive window decayed shut) still count toward lingerRounds
// so the per-round averages stay honest about what the policy is doing.
func (m *Metrics) BatchRound(node int, window time.Duration, gained, parallel int) {
	n := m.at(node)
	n.lingerRounds.Add(1)
	n.lingerNanos.Add(uint64(window.Nanoseconds()))
	n.lingerGained.Add(uint64(gained))
	if parallel > 0 {
		n.parallelRounds.Add(1)
		n.parallelOps.Add(uint64(parallel))
	}
}

// ReaderPressure implements Observer.
func (m *Metrics) ReaderPressure(node, acquires int) {
	n := m.at(node)
	n.pressureRounds.Add(1)
	n.readerAcquires.Add(uint64(acquires))
}

// Stall implements Observer.
func (m *Metrics) Stall(node int, held time.Duration) {
	m.at(node).stalls.Add(1)
}

// PanicContained implements Observer.
func (m *Metrics) PanicContained(node int, idx uint64) {
	m.at(node).panics.Add(1)
}

// OpDone implements Observer.
func (m *Metrics) OpDone(node int, class OpClass, elapsed time.Duration) {
	if class >= NumOpClasses {
		class = OpUpdate
	}
	m.at(node).latency[class].Record(elapsed)
}

// LatencySnapshot summarizes one latency histogram. Durations are reported
// in nanoseconds so the struct marshals cleanly to JSON.
type LatencySnapshot struct {
	Count  uint64 `json:"count"`
	MeanNs uint64 `json:"mean_ns"`
	P50Ns  uint64 `json:"p50_ns"`
	P90Ns  uint64 `json:"p90_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

func latencySnapshot(h *histogram.Histogram) LatencySnapshot {
	return LatencySnapshot{
		Count:  h.Count(),
		MeanNs: uint64(h.Mean().Nanoseconds()),
		P50Ns:  uint64(h.Percentile(50).Nanoseconds()),
		P90Ns:  uint64(h.Percentile(90).Nanoseconds()),
		P99Ns:  uint64(h.Percentile(99).Nanoseconds()),
		MaxNs:  uint64(h.Max().Nanoseconds()),
	}
}

// NodeSnapshot is one node's slice of a Snapshot.
type NodeSnapshot struct {
	Node   int             `json:"node"`
	Read   LatencySnapshot `json:"read"`
	Update LatencySnapshot `json:"update"`
	// Batch is the distribution of combiner batch sizes on this node;
	// Appends the distribution of log entries appended per round (they
	// differ only when a round appends nothing).
	Batch   DistSnapshot `json:"batch"`
	Appends DistSnapshot `json:"appends"`

	CombineRounds    uint64 `json:"combine_rounds"`
	CombineNanos     uint64 `json:"combine_ns"`
	LingerRounds     uint64 `json:"linger_rounds"`
	LingerNanos      uint64 `json:"linger_ns"`
	LingerGained     uint64 `json:"linger_gained"`
	ParallelRounds   uint64 `json:"parallel_rounds"`
	ParallelOps      uint64 `json:"parallel_ops"`
	ReaderRefreshes  uint64 `json:"reader_refreshes"`
	RefreshedEntries uint64 `json:"refreshed_entries"`
	Helps            uint64 `json:"helps"`
	HelpedEntries    uint64 `json:"helped_entries"`
	TailRetryEvents  uint64 `json:"tail_retry_events"`
	TailRetries      uint64 `json:"tail_retries"`
	WriterWaits      uint64 `json:"writer_waits"`
	WriterWaitSpins  uint64 `json:"writer_wait_spins"`
	PressureRounds   uint64 `json:"pressure_rounds"`
	ReaderAcquires   uint64 `json:"reader_acquires"`
	Stalls           uint64 `json:"stalls"`
	Panics           uint64 `json:"panics"`
}

// Snapshot is a point-in-time read-out of a Metrics observer: per-node
// detail plus Read/Update latency merged across all nodes.
type Snapshot struct {
	Read   LatencySnapshot `json:"read"`
	Update LatencySnapshot `json:"update"`
	Batch  DistSnapshot    `json:"batch"`
	Nodes  []NodeSnapshot  `json:"nodes"`
}

// Snapshot captures the current state. It is safe to call while events are
// still being recorded; counters are read individually, so the snapshot is
// only approximately a single instant (like core.Stats).
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	merged := [NumOpClasses]*histogram.Histogram{histogram.New(), histogram.New()}
	var batch CountDist
	for i := range m.nodes {
		n := &m.nodes[i]
		merged[OpRead].Merge(&n.latency[OpRead])
		merged[OpUpdate].Merge(&n.latency[OpUpdate])
		batch.Merge(&n.batch)
		s.Nodes = append(s.Nodes, NodeSnapshot{
			Node:             i,
			Read:             latencySnapshot(&n.latency[OpRead]),
			Update:           latencySnapshot(&n.latency[OpUpdate]),
			Batch:            n.batch.Snapshot(),
			Appends:          n.appends.Snapshot(),
			CombineRounds:    n.combineRounds.Load(),
			CombineNanos:     n.combineNanos.Load(),
			LingerRounds:     n.lingerRounds.Load(),
			LingerNanos:      n.lingerNanos.Load(),
			LingerGained:     n.lingerGained.Load(),
			ParallelRounds:   n.parallelRounds.Load(),
			ParallelOps:      n.parallelOps.Load(),
			ReaderRefreshes:  n.readerRefreshes.Load(),
			RefreshedEntries: n.refreshedEntries.Load(),
			Helps:            n.helps.Load(),
			HelpedEntries:    n.helpedEntries.Load(),
			TailRetryEvents:  n.tailRetryEvents.Load(),
			TailRetries:      n.tailRetries.Load(),
			WriterWaits:      n.writerWaits.Load(),
			WriterWaitSpins:  n.writerWaitSpins.Load(),
			PressureRounds:   n.pressureRounds.Load(),
			ReaderAcquires:   n.readerAcquires.Load(),
			Stalls:           n.stalls.Load(),
			Panics:           n.panics.Load(),
		})
	}
	s.Read = latencySnapshot(merged[OpRead])
	s.Update = latencySnapshot(merged[OpUpdate])
	s.Batch = batch.Snapshot()
	return s
}
