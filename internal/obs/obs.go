// Package obs is NR's observability layer: a zero-allocation event hook
// interface (Observer) that internal/core, internal/log, and internal/rwlock
// fire protocol events into, plus a built-in Metrics observer that turns
// those events into per-node latency histograms, combiner batch-size
// distributions, and event counters.
//
// The paper's argument for NR is quantitative — batch sizes, log occupancy,
// and the read/update latency split explain why NR wins (§6, §8) — so the
// hooks cover exactly the events those quantities are made of:
//
//   - CombineStart / CombineEnd: one flat-combining round on a node, with
//     the batch size, the number of log entries appended, and its duration.
//   - ReaderRefresh: a reader found its replica stale and replayed log
//     entries itself (the §5.3 read path's slow case).
//   - Help: a blocked appender or the stall watchdog replayed entries into
//     another node's replica (the §6 inactive-replica defense).
//   - LogTailRetry: failed CAS attempts on the shared log tail — the only
//     cross-node contention point of the update path (§5.1).
//   - WriterWait: a replica writer spun waiting for the distributed
//     readers-writer lock's reader flags to drain (§5.5).
//   - BatchRound: one combining round under an active batching policy,
//     with the linger window used, the ops the window gained, and the ops
//     handed off by parallel combining (the policy engine's own telemetry,
//     on top of CombineEnd's batch size).
//   - ReaderPressure: one combining round's view of the node's reader
//     traffic — how many read-lock acquisitions the replica saw since the
//     node's previous round. Reported by the combiner (not per read: the
//     read path stays free of observer calls beyond OpDone) from the
//     distributed lock's per-slot acquisition counters, it is the signal
//     the adaptive batching controller needs to fold reader refresh into
//     its linger decisions (ROADMAP item 1 remainder).
//   - Stall: the watchdog flagged a combiner holding its lock past the
//     configured threshold (§6's stalled-thread hazard).
//   - PanicContained: a user Execute panic was contained (failure model).
//   - OpDone: one operation completed, classified read/update, with its
//     end-to-end latency as seen by the submitting thread.
//
// Every method takes only scalar arguments so that firing an event never
// allocates; a disabled observer costs the caller a single nil check.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// OpClass classifies a completed operation for latency accounting.
type OpClass uint8

const (
	// OpRead is an operation served on the local-replica read path. This
	// includes "fake updates" (§6) that a FakeUpdater resolved as reads.
	OpRead OpClass = iota
	// OpUpdate is an operation that went through the shared log.
	OpUpdate
	// NumOpClasses is the number of operation classes.
	NumOpClasses
)

// String names the class for reports.
func (c OpClass) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	}
	return "unknown"
}

// Observer receives NR protocol events. Implementations must be safe for
// concurrent use from many goroutines and must not block: hooks fire from
// the middle of the combining and read paths. Node arguments identify the
// replica the event concerns (for Help, the node being helped, not the
// helper). All arguments are scalars; a call site never allocates.
type Observer interface {
	// CombineStart fires when a combiner begins a combining round on node.
	CombineStart(node int)
	// CombineEnd fires when the round finishes: batch ops were collected
	// from the node's slots, appended log entries were reserved+filled
	// (equal to batch on the normal path), taking elapsed overall.
	CombineEnd(node, batch, appended int, elapsed time.Duration)
	// ReaderRefresh fires when a reader replayed entries log entries into
	// its own replica because no combiner was active to do it.
	ReaderRefresh(node, entries int)
	// Help fires when some thread replayed entries log entries into
	// another node's replica (node is the helped replica).
	Help(node, entries int)
	// LogTailRetry fires when a log-tail reservation lost retries CAS
	// attempts before succeeding or giving up (node is the reserver's).
	LogTailRetry(node, retries int)
	// WriterWait fires when acquiring a replica's writer lock had to spin
	// for reader flags to drain; spins counts scheduler yields.
	WriterWait(node, spins int)
	// BatchRound fires once per non-empty combining round while a batching
	// policy is active: window is the linger window the round used (0 when
	// an adaptive window has decayed shut), gained how many ops the linger
	// phase collected beyond the first pass, parallel how many ops were
	// handed to parked owners for concurrent execution (0 = serial round).
	BatchRound(node int, window time.Duration, gained, parallel int)
	// ReaderPressure fires once per combining round on node with the
	// number of read-lock acquisitions the node's replica saw since the
	// previous round (0-acquisition rounds are not reported).
	ReaderPressure(node, acquires int)
	// Stall fires when the watchdog flags node's combiner lock as held
	// longer than the stall threshold (once per acquisition).
	Stall(node int, held time.Duration)
	// PanicContained fires when a user Execute panic was contained while
	// applying log index idx on node (idx == ^uint64(0) for the read path).
	PanicContained(node int, idx uint64)
	// OpDone fires once per completed operation on the submitting thread's
	// node, with the end-to-end latency the submitter observed.
	OpDone(node int, class OpClass, elapsed time.Duration)
}

// distBuckets is the number of power-of-two buckets in a CountDist: bucket
// b counts values v with bits.Len64(v) == b, i.e. 0, 1, 2–3, 4–7, ...
// 32 buckets cover every count that fits in 31 bits.
const distBuckets = 32

// CountDist is a lock-free distribution over small non-negative integer
// quantities (batch sizes, retry counts): power-of-two buckets plus exact
// total/sum/max. The zero value is ready to use.
type CountDist struct {
	counts [distBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// Record adds one observation of value v.
//
//nr:noalloc
func (d *CountDist) Record(v uint64) {
	b := bits.Len64(v)
	if b >= distBuckets {
		b = distBuckets - 1
	}
	d.counts[b].Add(1)
	d.total.Add(1)
	d.sum.Add(v)
	for {
		cur := d.max.Load()
		if v <= cur || d.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (d *CountDist) Count() uint64 { return d.total.Load() }

// Sum returns the sum of all observed values.
func (d *CountDist) Sum() uint64 { return d.sum.Load() }

// Max returns the largest observed value.
func (d *CountDist) Max() uint64 { return d.max.Load() }

// Mean returns the mean observed value (0 with no observations).
func (d *CountDist) Mean() float64 {
	n := d.total.Load()
	if n == 0 {
		return 0
	}
	return float64(d.sum.Load()) / float64(n)
}

// bucketLow returns the smallest value bucket b counts.
func bucketLow(b int) uint64 {
	if b == 0 {
		return 0
	}
	return 1 << (b - 1)
}

// Percentile returns a lower bound on the p-th percentile (0 < p <= 100):
// the lower edge of the bucket containing the rank, which for power-of-two
// buckets is within 2x of the true value.
func (d *CountDist) Percentile(p float64) uint64 {
	n := d.total.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(n))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b := 0; b < distBuckets; b++ {
		seen += d.counts[b].Load()
		if seen >= rank {
			return bucketLow(b)
		}
	}
	return d.Max()
}

// Merge folds other into d.
func (d *CountDist) Merge(other *CountDist) {
	for b := 0; b < distBuckets; b++ {
		if c := other.counts[b].Load(); c > 0 {
			d.counts[b].Add(c)
		}
	}
	d.total.Add(other.total.Load())
	d.sum.Add(other.sum.Load())
	for {
		cur, o := d.max.Load(), other.max.Load()
		if o <= cur || d.max.CompareAndSwap(cur, o) {
			return
		}
	}
}

// DistSnapshot is a point-in-time summary of a CountDist.
type DistSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Snapshot summarizes the distribution.
func (d *CountDist) Snapshot() DistSnapshot {
	return DistSnapshot{
		Count: d.Count(),
		Mean:  d.Mean(),
		P50:   d.Percentile(50),
		P99:   d.Percentile(99),
		Max:   d.Max(),
	}
}

// Nop is an Observer that ignores every event; embed it to implement only
// the events you care about.
type Nop struct{}

// CombineStart implements Observer.
func (Nop) CombineStart(int) {}

// CombineEnd implements Observer.
func (Nop) CombineEnd(int, int, int, time.Duration) {}

// ReaderRefresh implements Observer.
func (Nop) ReaderRefresh(int, int) {}

// Help implements Observer.
func (Nop) Help(int, int) {}

// LogTailRetry implements Observer.
func (Nop) LogTailRetry(int, int) {}

// WriterWait implements Observer.
func (Nop) WriterWait(int, int) {}

// BatchRound implements Observer.
func (Nop) BatchRound(int, time.Duration, int, int) {}

// ReaderPressure implements Observer.
func (Nop) ReaderPressure(int, int) {}

// Stall implements Observer.
func (Nop) Stall(int, time.Duration) {}

// PanicContained implements Observer.
func (Nop) PanicContained(int, uint64) {}

// OpDone implements Observer.
func (Nop) OpDone(int, OpClass, time.Duration) {}

// Multi fans every event out to several observers, in order.
type Multi []Observer

// Combine returns an Observer that forwards to every non-nil observer in
// os: nil when none remain, the observer itself when one does, a Multi
// otherwise.
func Combine(os ...Observer) Observer {
	var live Multi
	for _, o := range os {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// FindMetrics returns the first *Metrics inside o — o itself or a Multi
// element — or nil. core uses it to include the built-in metrics in its
// unified snapshot regardless of how the observer was composed.
func FindMetrics(o Observer) *Metrics {
	switch v := o.(type) {
	case *Metrics:
		return v
	case Multi:
		for _, e := range v {
			if m := FindMetrics(e); m != nil {
				return m
			}
		}
	}
	return nil
}

// CombineStart implements Observer.
func (m Multi) CombineStart(node int) {
	for _, o := range m {
		o.CombineStart(node)
	}
}

// CombineEnd implements Observer.
func (m Multi) CombineEnd(node, batch, appended int, elapsed time.Duration) {
	for _, o := range m {
		o.CombineEnd(node, batch, appended, elapsed)
	}
}

// ReaderRefresh implements Observer.
func (m Multi) ReaderRefresh(node, entries int) {
	for _, o := range m {
		o.ReaderRefresh(node, entries)
	}
}

// Help implements Observer.
func (m Multi) Help(node, entries int) {
	for _, o := range m {
		o.Help(node, entries)
	}
}

// LogTailRetry implements Observer.
func (m Multi) LogTailRetry(node, retries int) {
	for _, o := range m {
		o.LogTailRetry(node, retries)
	}
}

// WriterWait implements Observer.
func (m Multi) WriterWait(node, spins int) {
	for _, o := range m {
		o.WriterWait(node, spins)
	}
}

// BatchRound implements Observer.
func (m Multi) BatchRound(node int, window time.Duration, gained, parallel int) {
	for _, o := range m {
		o.BatchRound(node, window, gained, parallel)
	}
}

// ReaderPressure implements Observer.
func (m Multi) ReaderPressure(node, acquires int) {
	for _, o := range m {
		o.ReaderPressure(node, acquires)
	}
}

// Stall implements Observer.
func (m Multi) Stall(node int, held time.Duration) {
	for _, o := range m {
		o.Stall(node, held)
	}
}

// PanicContained implements Observer.
func (m Multi) PanicContained(node int, idx uint64) {
	for _, o := range m {
		o.PanicContained(node, idx)
	}
}

// OpDone implements Observer.
func (m Multi) OpDone(node int, class OpClass, elapsed time.Duration) {
	for _, o := range m {
		o.OpDone(node, class, elapsed)
	}
}
