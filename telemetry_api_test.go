// Public-surface tests for the continuous telemetry plane: WithTelemetry /
// WithSLO wiring on plain, sharded, and persistent instances, the unified
// snapshot's WAL durability gauges, and the reader-acquisition counter.
package nr_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	nr "github.com/asplos17/nr"
)

// TestUnifiedSnapshotCarriesDurableLag is the regression test that a
// persistent instance's Metrics() snapshot folds in the WAL: Persist is
// non-nil, counters flow, and DurableLag closes to zero after an explicit
// SyncWAL.
func TestUnifiedSnapshotCarriesDurableLag(t *testing.T) {
	dir := t.TempDir()
	inst := smallPersistent(t, dir)
	defer inst.Close()
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		h.Execute(kvOp{Key: i % 5, Delta: 1})
	}

	m := inst.Metrics()
	if m.Persist == nil {
		t.Fatal("persistent instance's snapshot has no Persist gauges")
	}
	if m.Persist.Appends != 100 {
		t.Errorf("Persist.Appends = %d, want 100", m.Persist.Appends)
	}
	if err := inst.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	m = inst.Metrics()
	if m.Persist.Fsyncs == 0 || m.Persist.FsyncNanos == 0 {
		t.Errorf("after SyncWAL: Fsyncs = %d, FsyncNanos = %d, want both > 0",
			m.Persist.Fsyncs, m.Persist.FsyncNanos)
	}
	if m.Persist.DurableIndex < 100 {
		t.Errorf("DurableIndex = %d, want >= 100 after sync", m.Persist.DurableIndex)
	}
	if m.Persist.DurableLag != 0 {
		t.Errorf("DurableLag = %d after SyncWAL, want 0", m.Persist.DurableLag)
	}

	// A transient instance must not grow the gauges.
	plain, err := nr.New(newKV, nr.WithNodes(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if m := plain.Metrics(); m.Persist != nil {
		t.Error("transient instance's snapshot claims Persist gauges")
	}
}

func TestWithTelemetryWindows(t *testing.T) {
	inst, err := nr.New(newKV,
		nr.WithNodes(2, 2, 1),
		nr.WithTelemetry(2*time.Millisecond, 16),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	tel := inst.Telemetry()
	if tel == nil {
		t.Fatal("Telemetry() nil on an instance built with WithTelemetry")
	}

	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		for i := uint64(0); i < 50; i++ {
			h.Execute(kvOp{Key: i, Delta: 1})
			h.Execute(kvOp{Key: i, Read: true})
		}
		if ws := tel.Snapshot(); len(ws) > 0 {
			var traffic *nr.TelemetryWindow
			for i := range ws {
				if ws[i].OpsPerSec > 0 {
					traffic = &ws[i]
					break
				}
			}
			if traffic != nil {
				if traffic.ReadOpsPerSec <= 0 || traffic.UpdateOpsPerSec <= 0 {
					t.Errorf("traffic window has zero class rate: %+v", traffic)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no telemetry window with traffic within deadline")
		}
	}
	// Reader instrumentation flows into the unified snapshot: the reads
	// above acquired the distributed read lock.
	if m := inst.Metrics(); m.Stats.ReaderAcquires == 0 {
		t.Error("Stats.ReaderAcquires = 0 after read traffic")
	}
}

func TestWithSLOBreachNotify(t *testing.T) {
	var fired atomic.Int32
	var gotClass atomic.Value
	inst, err := nr.New(newKV,
		nr.WithNodes(1, 2, 1),
		nr.WithTelemetry(2*time.Millisecond, 16),
		// 1ns p99: every window with read traffic breaches.
		nr.WithSLO(nr.OpRead, time.Nanosecond, 0),
		nr.WithSLONotify(func(ev nr.BreachEvent) {
			fired.Add(1)
			gotClass.Store(ev.Status.Class)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		for i := uint64(0); i < 100; i++ {
			h.Execute(kvOp{Key: i, Read: true})
		}
		time.Sleep(time.Millisecond)
	}
	if fired.Load() == 0 {
		t.Fatal("unmeetable SLO never fired the breach callback")
	}
	if c, _ := gotClass.Load().(string); c != "read" {
		t.Errorf("breach class = %q, want read", c)
	}
	sts := inst.Telemetry().SLOStatuses()
	if len(sts) != 1 || sts[0].BreachedWindows == 0 || !strings.Contains(sts[0].Class, "read") {
		t.Errorf("SLO statuses = %+v, want breached read objective", sts)
	}
	if sts[0].BudgetBurn <= 1 {
		t.Errorf("BudgetBurn = %v, want > 1 when every window breaches", sts[0].BudgetBurn)
	}
}

func TestShardedTelemetryAggregates(t *testing.T) {
	inst, err := nr.NewSharded(newKV, 4,
		nr.KeyRouter(4, func(op kvOp) uint64 { return op.Key }),
		nr.WithNodes(2, 4, 1),
		nr.WithTelemetry(2*time.Millisecond, 16),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	tel := inst.Telemetry()
	if tel == nil {
		t.Fatal("Telemetry() nil on a sharded instance built with WithTelemetry")
	}
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		for i := uint64(0); i < 200; i++ {
			h.Execute(kvOp{Key: i, Delta: 1})
		}
		if w, ok := tel.Last(); ok && w.UpdateOpsPerSec > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sharded collector derived no traffic window within deadline")
		}
	}
}
