// Durability surface of the nr package: WithPersistence attaches
// internal/persist's write-ahead log to an instance — every update
// operation is appended (with its op token) to generation-numbered segment
// files by a flusher goroutine that group-fsyncs off the hot path —
// Checkpoint snapshots a replica atomically, and Recover rebuilds an
// instance from the durable state after a crash, answering
// Recovered.WasExecuted(token) for detectable recovery. See DESIGN.md
// "Durability & recovery".
package nr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/persist"
)

// Codec serializes operations for the write-ahead log. AppendEncode
// appends op's encoding to dst and returns the extended slice — it runs on
// the combiner's append path, so implementations should avoid allocation
// (append into dst, no intermediate buffers). Decode must invert it.
// Encoding must be deterministic and self-delimiting is NOT required: each
// record's payload is length-framed by the WAL.
type Codec[O any] interface {
	AppendEncode(dst []byte, op O) ([]byte, error)
	Decode(data []byte) (O, error)
}

// Snapshotter is implemented by sequential structures that can serialize
// their entire state; WithPersistence requires it (Checkpoint and Recover
// are built on it). The bytes must capture everything needed for the
// restore function given to Recover to rebuild an identical structure —
// including any internal seeds, so replicas restored from the same bytes
// stay deterministic.
type Snapshotter interface {
	SnapshotBytes() ([]byte, error)
}

// SyncInfo describes one completed WAL sync; see WithSyncHook.
type SyncInfo = persist.SyncInfo

// PersistStats are point-in-time WAL counters (appends, pages, fsyncs,
// rotations, backpressure stalls).
type PersistStats = persist.Stats

// ErrNoPersistence is returned by persistence methods (Checkpoint,
// SyncWAL, ...) on instances built without WithPersistence.
var ErrNoPersistence = errors.New("nr: instance has no persistence (build with WithPersistence or Recover)")

// PersistOption tunes persistence; pass to WithPersistence (or, for
// Recover, via WithPersistenceOptions).
type PersistOption func(*persistTuning)

type persistTuning struct {
	segmentBytes  int
	pageBytes     int
	groupInterval time.Duration
	fsync         persist.FsyncMode
	onSync        func(SyncInfo)
	snapshotEvery int
}

// WithFsyncNever disables fsync: the WAL still writes pages, but the OS
// decides when they reach disk. For benchmarking the write path, or for
// workloads where losing the last instants of history on power failure is
// acceptable.
func WithFsyncNever() PersistOption {
	return func(t *persistTuning) { t.fsync = persist.FsyncNever }
}

// WithGroupInterval sets how often a partial WAL page is flushed and
// fsynced (default 2ms): the window of acknowledged-but-not-yet-durable
// operations after a crash. Use SyncWAL for explicit barriers.
func WithGroupInterval(d time.Duration) PersistOption {
	return func(t *persistTuning) { t.groupInterval = d }
}

// WithSegmentBytes sets the WAL segment rotation threshold (default 8 MiB).
func WithSegmentBytes(n int) PersistOption {
	return func(t *persistTuning) { t.segmentBytes = n }
}

// WithPageBytes sets the WAL's in-memory page size (default 128 KiB).
func WithPageBytes(n int) PersistOption {
	return func(t *persistTuning) { t.pageBytes = n }
}

// WithSyncHook installs fn to be called (on the flusher goroutine) after
// every WAL sync with the durable watermark and the segment byte offset it
// covers. The chaos harness uses it to enumerate crash points; monitoring
// can use it to export durability lag. fn must not call into the instance.
func WithSyncHook(fn func(SyncInfo)) PersistOption {
	return func(t *persistTuning) { t.onSync = fn }
}

// WithSnapshotEvery makes the instance Checkpoint itself automatically
// after every n persisted update operations (n <= 0, the default, means
// only explicit Checkpoint calls). The snapshot runs on a background
// goroutine, never on an operation's path.
func WithSnapshotEvery(n int) PersistOption {
	return func(t *persistTuning) { t.snapshotEvery = n }
}

// persistConfig is the non-generic option payload accumulated in settings;
// New re-types codec via the Codec[O] assertion.
type persistConfig struct {
	dir    string
	codec  any // Codec[O]
	popts  []PersistOption
	resume *resumeState // non-nil when built by Recover
}

type resumeState struct {
	gen    uint64
	tokens map[uint64]struct{}
}

// WithPersistence makes the instance durable: every update operation is
// appended to a write-ahead log in dir (group-fsynced off the hot path by
// a dedicated flusher goroutine; operations never block on I/O), and
// Checkpoint/Recover snapshot and rebuild the structure through codec and
// the Snapshotter interface, which the structure must implement.
//
// The O type parameter must match the instance's operation type. dir must
// be fresh (or empty): starting a new instance over existing durable state
// would shadow it, so New fails in that case — recover it with Recover, or
// delete it deliberately.
func WithPersistence[O any](dir string, codec Codec[O], popts ...PersistOption) Option {
	return func(s *settings) {
		s.persist = &persistConfig{dir: dir, codec: codec, popts: popts}
	}
}

// WithPersistenceOptions carries persistence tuning into Recover, which
// constructs the persistence itself (dir and codec are Recover arguments).
// Ignored unless used with Recover.
func WithPersistenceOptions(popts ...PersistOption) Option {
	return func(s *settings) { s.persistTuning = append(s.persistTuning, popts...) }
}

// persistence implements core.Persister on top of a WAL. Detectability
// bookkeeping splits in two: the WAL journals the (index, token) pairs
// not yet covered by a snapshot (under the lock the append already
// holds — see persist.TokenPair), and snapTokens is the cumulative token
// set already folded into the latest snapshot, touched only under snapMu.
type persistence[O any] struct {
	dir   string
	codec Codec[O]
	wal   *persist.WAL

	// encPool recycles per-op encode buffers (*[]byte) so the hot path
	// allocates nothing in steady state.
	encPool sync.Pool

	snapMu     sync.Mutex // serializes checkpoints; guards snapTokens
	snapTokens map[uint64]struct{}
	lastSave   atomic.Int64

	snapshotEvery uint64
	snapCounter   atomic.Uint64
	snapInFlight  atomic.Bool
	checkpoint    func() error // bound to the owning Instance
}

// Append implements core.Persister: encode into a pooled buffer outside
// every lock, then hand the bytes to the WAL (memcpy into the active
// page, token journaled under the same lock; no file I/O, no per-op
// allocation).
//
//nr:hotpath-noio
func (p *persistence[O]) Append(idx uint64, token uint64, op O) {
	bp, _ := p.encPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	buf, encErr := p.codec.AppendEncode((*bp)[:0], op)
	*bp = buf[:0]
	// WAL errors are sticky; the hot path cannot return them, so they
	// surface on the next SyncWAL / Checkpoint / Close.
	if encErr != nil {
		// Route the encode failure through the WAL's poison path: the
		// contiguity frontier could never pass the lost record.
		_ = p.wal.Append(idx, token, func([]byte) ([]byte, error) { return nil, encErr })
	} else {
		_ = p.wal.AppendBytes(idx, token, buf)
	}
	p.encPool.Put(bp)
	if n := p.snapshotEvery; n > 0 {
		if p.snapCounter.Add(1)%n == 0 && p.snapInFlight.CompareAndSwap(false, true) {
			go func() {
				defer p.snapInFlight.Store(false)
				_ = p.checkpoint()
			}()
		}
	}
}

// attachPersistence builds the persistence for inst from pc and installs
// it as the core's persister. Called from New with no operations executed.
func attachPersistence[O, R any](inst *Instance[O, R], pc *persistConfig) (*persistence[O], error) {
	codec, ok := pc.codec.(Codec[O])
	if !ok {
		return nil, fmt.Errorf("nr: WithPersistence codec is %T, not a Codec for this instance's operation type", pc.codec)
	}
	snapOK := false
	inst.inner.InspectReplica(0, func(ds core.Sequential[O, R]) {
		_, snapOK = ds.(Snapshotter)
	})
	if !snapOK {
		return nil, errors.New("nr: WithPersistence requires the sequential structure to implement nr.Snapshotter")
	}
	var t persistTuning
	for _, o := range pc.popts {
		o(&t)
	}
	gen := uint64(1)
	snapTokens := make(map[uint64]struct{})
	if pc.resume != nil {
		gen = pc.resume.gen
		for tok := range pc.resume.tokens {
			snapTokens[tok] = struct{}{}
		}
	} else {
		has, err := persist.HasState(pc.dir)
		if err != nil {
			return nil, err
		}
		if has {
			return nil, fmt.Errorf("nr: persistence dir %q already holds durable state; recover it with nr.Recover or remove it deliberately", pc.dir)
		}
	}
	wal, err := persist.Open(pc.dir, gen, persist.Options{
		SegmentBytes:  t.segmentBytes,
		PageBytes:     t.pageBytes,
		GroupInterval: t.groupInterval,
		Fsync:         t.fsync,
		OnSync:        t.onSync,
	})
	if err != nil {
		return nil, err
	}
	p := &persistence[O]{
		dir:           pc.dir,
		codec:         codec,
		wal:           wal,
		snapTokens:    snapTokens,
		snapshotEvery: uint64(max(t.snapshotEvery, 0)),
	}
	p.checkpoint = func() error { return inst.Checkpoint() }
	if err := inst.inner.AttachPersister(p); err != nil {
		wal.Close()
		return nil, err
	}
	return p, nil
}

// Checkpoint synchronously snapshots replica 0 (quiesced to the completed
// tail) to the persistence dir: an atomic temp-file+rename write of the
// serialized structure, the applied log index, and the cumulative op-token
// set. Recovery then replays only the WAL suffix past the snapshot.
// Concurrent operations proceed, except that the snapshotted replica's
// write lock is held while SnapshotBytes runs.
func (i *Instance[O, R]) Checkpoint() error {
	p := i.pst
	if p == nil {
		return ErrNoPersistence
	}
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	var (
		payload []byte
		serr    error
		applied uint64
	)
	i.inner.CheckpointReplica(0, func(ds core.Sequential[O, R], tail uint64) {
		applied = tail
		s, ok := ds.(Snapshotter)
		if !ok {
			serr = errors.New("nr: structure does not implement Snapshotter")
			return
		}
		payload, serr = s.SnapshotBytes()
	})
	if serr != nil {
		return serr
	}
	covered := p.wal.TokensBelow(applied)
	toks := make([]uint64, 0, len(p.snapTokens)+len(covered))
	for tok := range p.snapTokens {
		toks = append(toks, tok)
	}
	for _, pr := range covered {
		toks = append(toks, pr.Tok)
	}
	err := persist.SaveSnapshot(p.dir, persist.Snapshot{
		Gen:     p.wal.Gen(),
		Index:   applied,
		Tokens:  toks,
		Payload: payload,
	})
	if err != nil {
		return err
	}
	// Only after the snapshot is durably named: fold the covered tokens
	// into the cumulative set (guarded by snapMu, held here) and compact
	// the WAL's journal. New appends journal indices >= applied, so the
	// set dropped is exactly the set folded.
	for _, pr := range covered {
		p.snapTokens[pr.Tok] = struct{}{}
	}
	p.wal.DropTokensBelow(applied)
	p.lastSave.Store(time.Now().UnixNano())
	return nil
}

// SyncWAL blocks until every operation appended before the call is durable
// (a group fsync), returning the WAL's sticky failure, if any. This is the
// explicit durability barrier: after SyncWAL returns nil, those operations
// survive kill -9.
func (i *Instance[O, R]) SyncWAL() error {
	if i.pst == nil {
		return ErrNoPersistence
	}
	return i.pst.wal.Sync()
}

// DurableIndex returns the durable watermark: every update with log index
// below it is on disk. Zero (and false) without persistence.
func (i *Instance[O, R]) DurableIndex() (uint64, bool) {
	if i.pst == nil {
		return 0, false
	}
	return i.pst.wal.DurableIndex(), true
}

// LastSave returns the completion time of the last successful Checkpoint
// (the zero time if none this process), mirroring redis LASTSAVE.
func (i *Instance[O, R]) LastSave() time.Time {
	if i.pst == nil {
		return time.Time{}
	}
	ns := i.pst.lastSave.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// WALStats returns point-in-time WAL counters; ok is false without
// persistence.
func (i *Instance[O, R]) WALStats() (stats PersistStats, ok bool) {
	if i.pst == nil {
		return PersistStats{}, false
	}
	return i.pst.wal.Stats(), true
}

// Recovered is the result of Recover: a fully usable Instance plus the
// detectability view of the crashed run.
type Recovered[O, R any] struct {
	*Instance[O, R]
	executed      map[uint64]struct{}
	replayed      int
	dropped       int
	replayPanics  int
	snapshotIndex uint64
}

// WasExecuted answers, definitively, whether the operation identified by
// token (see Handle.LastToken) had durably executed before the crash:
// true when its effect is part of the recovered state, false when it is
// not — either it never ran, or it ran but had not reached disk. The
// answer covers every durable operation back to the first generation,
// including ops submitted via PostAndAbandon (whose submitters never saw a
// response). Tokens are unique within one instance lifetime; queries are
// about the crashed run's tokens, not ops executed after this recovery.
func (r *Recovered[O, R]) WasExecuted(token uint64) bool {
	_, ok := r.executed[token]
	return ok
}

// ReplayedOps reports how many WAL records recovery replayed on top of the
// snapshot.
func (r *Recovered[O, R]) ReplayedOps() int { return r.replayed }

// DroppedRecords reports how many WAL records were present but unusable:
// already covered by the snapshot, or beyond the first index gap in the
// durable suffix (an un-persisted earlier op makes their pre-state
// unknowable, so they do not count as executed).
func (r *Recovered[O, R]) DroppedRecords() int { return r.dropped }

// ReplayPanics reports how many replayed operations panicked during
// recovery (they panicked identically before the crash; panic containment
// mirrors the live protocol's).
func (r *Recovered[O, R]) ReplayPanics() int { return r.replayPanics }

// SnapshotIndex reports the log index the recovery snapshot covered;
// replay resumed there.
func (r *Recovered[O, R]) SnapshotIndex() uint64 { return r.snapshotIndex }

// replayInto applies one decoded op with the live path's panic
// containment: a panicking op keeps whatever partial mutation it made and
// replay continues — exactly what safeExecute produced before the crash.
func replayInto[O, R any](ds Sequential[O, R], op O) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	ds.Execute(op)
	return false
}

// Recover rebuilds an instance from dir's durable state: load the latest
// intact snapshot, replay the contiguous WAL suffix (in log order, with
// per-op panic containment), then start a fresh instance whose every
// replica is restored from the recovered bytes. restore must rebuild a
// structure from Snapshotter bytes — it receives nil for a fresh dir, and
// must then return an empty structure, so Recover doubles as
// "open-or-create".
//
// Recovery is itself crash-safe: the recovered state is written as a
// new-generation snapshot before the old generation is pruned, so a crash
// mid-recovery leaves either the old generation intact or the new one
// complete.
//
// options are the usual New options (topology, metrics, ...); persistence
// tuning goes via WithPersistenceOptions. Passing WithPersistence is an
// error — Recover wires persistence itself, continuing at the next
// generation in dir.
func Recover[O, R any](dir string, restore func(data []byte) (Sequential[O, R], error), codec Codec[O], options ...Option) (*Recovered[O, R], error) {
	if restore == nil {
		return nil, errors.New("nr: restore function is nil")
	}
	if codec == nil {
		return nil, errors.New("nr: codec is nil")
	}
	var probe settings
	for _, o := range options {
		o(&probe)
	}
	if probe.persist != nil {
		return nil, errors.New("nr: do not pass WithPersistence to Recover; use WithPersistenceOptions for tuning")
	}

	st, err := persist.Load(dir)
	if err != nil {
		return nil, err
	}
	ds, err := restore(st.SnapshotPayload)
	if err != nil {
		return nil, fmt.Errorf("nr: restore snapshot: %w", err)
	}
	if ds == nil {
		return nil, errors.New("nr: restore returned a nil structure")
	}
	executed := make(map[uint64]struct{}, len(st.Tokens)+len(st.Records))
	for _, tok := range st.Tokens {
		executed[tok] = struct{}{}
	}
	replayed, panics, dropped := 0, 0, st.Dropped
	for _, rec := range st.Records {
		op, derr := codec.Decode(rec.Payload)
		if derr != nil {
			// Undecodable record: treat like a torn tail — the contiguous
			// durable prefix ends here.
			dropped += len(st.Records) - replayed
			break
		}
		if replayInto(ds, op) {
			panics++
		}
		executed[rec.Token] = struct{}{}
		replayed++
	}
	snapper, ok := ds.(Snapshotter)
	if !ok {
		return nil, errors.New("nr: restored structure does not implement Snapshotter")
	}
	payload, err := snapper.SnapshotBytes()
	if err != nil {
		return nil, fmt.Errorf("nr: snapshot recovered state: %w", err)
	}
	newGen := st.Gen + 1
	toks := make([]uint64, 0, len(executed))
	for tok := range executed {
		toks = append(toks, tok)
	}
	if err := persist.SaveSnapshot(dir, persist.Snapshot{Gen: newGen, Index: 0, Tokens: toks, Payload: payload}); err != nil {
		return nil, fmt.Errorf("nr: persist recovered state: %w", err)
	}
	persist.PruneBelowGen(dir, newGen)

	// Validate that restore round-trips before handing it to create, which
	// cannot return an error.
	if probeDS, perr := restore(payload); perr != nil {
		return nil, fmt.Errorf("nr: recovered state does not restore: %w", perr)
	} else if probeDS == nil {
		return nil, errors.New("nr: restore returned a nil structure for the recovered state")
	}
	create := func() Sequential[O, R] {
		rds, rerr := restore(payload)
		if rerr != nil {
			// Pre-validated just above with identical bytes; a failure here
			// is a non-deterministic restore, which violates the contract.
			panic(fmt.Sprintf("nr: restore failed on validated snapshot: %v", rerr))
		}
		return rds
	}
	inst, err := New[O, R](create, append(options[:len(options):len(options)],
		withResumedPersistence[O](dir, codec, newGen, executed))...)
	if err != nil {
		return nil, err
	}
	return &Recovered[O, R]{
		Instance:      inst,
		executed:      executed,
		replayed:      replayed,
		dropped:       dropped,
		replayPanics:  panics,
		snapshotIndex: st.SnapshotIndex,
	}, nil
}

// withResumedPersistence is Recover's internal option: continue persisting
// into dir at generation gen, with the cumulative executed-token set
// carried forward so future snapshots keep answering for pre-crash ops.
func withResumedPersistence[O any](dir string, codec Codec[O], gen uint64, tokens map[uint64]struct{}) Option {
	return func(s *settings) {
		var popts []PersistOption
		popts = append(popts, s.persistTuning...)
		s.persist = &persistConfig{
			dir: dir, codec: codec, popts: popts,
			resume: &resumeState{gen: gen, tokens: tokens},
		}
	}
}
