// Scheduler: the paper's motivating kernel use case — a priority queue for
// job scheduling (§1) — shared by many worker goroutines through NR.
// Producers insert jobs with deadlines; workers repeatedly pull the most
// urgent job (deleteMin). The priority queue itself is the plain sequential
// pairing heap from internal-style code, reimplemented here in ~40 lines to
// show that *any* user structure works, not just the ones this repository
// ships.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	nr "github.com/asplos17/nr"
)

// job is a scheduled unit of work.
type job struct {
	deadline int64
	id       int64
}

// pq is a sequential binary min-heap of jobs, ordered by deadline.
type pq struct {
	heap []job
}

type pqOp struct {
	kind byte // 'i' insert, 'd' deleteMin, 'p' peek
	job  job
}

type pqResp struct {
	job job
	ok  bool
}

func newPQ() nr.Sequential[pqOp, pqResp] { return &pq{} }

func (q *pq) Execute(op pqOp) pqResp {
	switch op.kind {
	case 'i':
		q.heap = append(q.heap, op.job)
		for i := len(q.heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if q.heap[parent].deadline <= q.heap[i].deadline {
				break
			}
			q.heap[parent], q.heap[i] = q.heap[i], q.heap[parent]
			i = parent
		}
		return pqResp{job: op.job, ok: true}
	case 'd':
		if len(q.heap) == 0 {
			return pqResp{}
		}
		minJob := q.heap[0]
		last := len(q.heap) - 1
		q.heap[0] = q.heap[last]
		q.heap = q.heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < last && q.heap[l].deadline < q.heap[smallest].deadline {
				smallest = l
			}
			if r < last && q.heap[r].deadline < q.heap[smallest].deadline {
				smallest = r
			}
			if smallest == i {
				break
			}
			q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
			i = smallest
		}
		return pqResp{job: minJob, ok: true}
	case 'p':
		if len(q.heap) == 0 {
			return pqResp{}
		}
		return pqResp{job: q.heap[0], ok: true}
	}
	return pqResp{}
}

func (q *pq) IsReadOnly(op pqOp) bool { return op.kind == 'p' }

func main() {
	inst, err := nr.New(newPQ, nr.WithNodes(4, 4, 1))
	if err != nil {
		log.Fatal(err)
	}

	const producers, workers = 4, 4
	const jobsPerProducer = 5000
	var produced, consumed atomic.Int64
	var deadlineSum atomic.Int64
	var wg sync.WaitGroup

	// Producers insert jobs with pseudo-random deadlines.
	for p := 0; p < producers; p++ {
		h, err := inst.Register()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *nr.Handle[pqOp, pqResp]) {
			defer wg.Done()
			seed := uint64(p)*2654435761 + 1
			for i := 0; i < jobsPerProducer; i++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				j := job{deadline: int64(seed % 1_000_000), id: int64(p)<<32 | int64(i)}
				h.Execute(pqOp{kind: 'i', job: j})
				produced.Add(1)
			}
		}(p, h)
	}

	// Workers drain the most urgent jobs.
	for w := 0; w < workers; w++ {
		h, err := inst.Register()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(h *nr.Handle[pqOp, pqResp]) {
			defer wg.Done()
			idle := 0
			for idle < 1000 {
				r := h.Execute(pqOp{kind: 'd'})
				if !r.ok {
					idle++
					continue
				}
				idle = 0
				consumed.Add(1)
				deadlineSum.Add(r.job.deadline)
			}
		}(h)
	}
	wg.Wait()

	// Drain whatever is left and verify conservation.
	h, err := inst.Register()
	if err != nil {
		log.Fatal(err)
	}
	for {
		r := h.Execute(pqOp{kind: 'd'})
		if !r.ok {
			break
		}
		consumed.Add(1)
	}
	fmt.Printf("produced=%d consumed=%d\n", produced.Load(), consumed.Load())
	if produced.Load() != consumed.Load() {
		log.Fatal("jobs lost or duplicated!")
	}
	fmt.Println("every job scheduled exactly once; priority order maintained per linearization")
}
