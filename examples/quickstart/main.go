// Quickstart: turn a 20-line sequential counter-map into a linearizable,
// NUMA-aware concurrent structure with nr.New — no locks, no atomics, no
// concurrency reasoning in the data structure itself.
package main

import (
	"fmt"
	"log"
	"sync"

	nr "github.com/asplos17/nr"
)

// counters is a plain sequential structure: named counters.
type counters struct {
	m map[string]int64
}

// op is the operation type NR logs and replays. Increment-by-delta when
// delta != 0; read otherwise.
type op struct {
	name  string
	delta int64
}

func newCounters() nr.Sequential[op, int64] { return &counters{m: make(map[string]int64)} }

// Execute applies one operation; it is ordinary single-threaded code.
func (c *counters) Execute(o op) int64 {
	if o.delta != 0 {
		c.m[o.name] += o.delta
	}
	return c.m[o.name]
}

// IsReadOnly tells NR which operations can skip the shared log.
func (c *counters) IsReadOnly(o op) bool { return o.delta == 0 }

func main() {
	// With no options New models the paper's machine: 4 NUMA nodes × 28 threads.
	inst, err := nr.New(newCounters)
	if err != nil {
		log.Fatal(err)
	}

	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h, err := inst.Register() // one handle per goroutine
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(h *nr.Handle[op, int64]) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Execute(op{name: "requests", delta: 1})
			}
		}(h)
	}
	wg.Wait()

	h, err := inst.Register()
	if err != nil {
		log.Fatal(err)
	}
	total := h.Execute(op{name: "requests"})
	fmt.Printf("requests = %d (want %d)\n", total, goroutines*perG)
	st := inst.Stats()
	fmt.Printf("update ops: %d, combining rounds: %d (avg batch %.1f)\n",
		st.UpdateOps, st.Combines, float64(st.CombinedOps)/float64(st.Combines))
	if total != goroutines*perG {
		log.Fatal("lost updates!")
	}
}
