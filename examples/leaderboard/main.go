// Leaderboard: the paper's Redis scenario (§8.3) as a library user would
// write it — a game leaderboard backed by the repository's sorted set
// (hash table + skip list, updated atomically as one black box), made
// concurrent with NR. Score updates are ZINCRBY; rank queries are ZRANK.
package main

import (
	"fmt"
	"log"
	"sync"

	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/ds"
)

func main() {
	// One replica per node; the sorted set seed must match across replicas.
	inst, err := nr.New(
		func() nr.Sequential[ds.ZOp, ds.ZResult] { return ds.NewSeqSortedSet(1024, 42) },
		nr.WithNodes(4, 4, 1),
	)
	if err != nil {
		log.Fatal(err)
	}

	const players = 64
	names := make([]string, players)
	for i := range names {
		names[i] = fmt.Sprintf("player-%02d", i)
	}

	// Populate, as the paper does before measuring.
	seedH, err := inst.Register()
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range names {
		seedH.Execute(ds.ZOp{Kind: ds.ZAdd, Member: n, Score: float64(i)})
	}

	// Concurrent game traffic: 90% rank queries, 10% score bumps — the
	// YCSB-style 10%-update mix of §8.3.
	const clients, opsPer = 8, 20000
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		h, err := inst.Register()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *nr.Handle[ds.ZOp, ds.ZResult]) {
			defer wg.Done()
			seed := uint64(c)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < opsPer; i++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				who := names[seed%players]
				if seed%10 == 0 {
					h.Execute(ds.ZOp{Kind: ds.ZIncrBy, Member: who, Score: float64(seed % 7)})
				} else {
					r := h.Execute(ds.ZOp{Kind: ds.ZRank, Member: who})
					if !r.OK {
						log.Fatalf("player %s vanished", who)
					}
				}
			}
		}(c, h)
	}
	wg.Wait()

	// Print the podium from any replica — they are all identical.
	inst.Quiesce()
	fmt.Println("final top 3:")
	inst.Inspect(0, func(s nr.Sequential[ds.ZOp, ds.ZResult]) {
		z := s.(*ds.SeqSortedSet).Inner()
		for i := 0; i < 3; i++ {
			m, sc, ok := z.ByRank(z.Len() - 1 - i)
			if ok {
				fmt.Printf("  %d. %s (%.0f)\n", i+1, m, sc)
			}
		}
	})
	st := inst.Stats()
	fmt.Printf("reads=%d updates=%d combining-rounds=%d\n", st.ReadOps, st.UpdateOps, st.Combines)
}
