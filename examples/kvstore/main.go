// KV store: a string key-value store with snapshot-style aggregate reads.
// This showcases the black-box advantage the paper highlights (§6): a GET,
// a PUT, and a whole-store aggregate (STATS: key count plus total value
// bytes) are all just operations on one sequential structure — the
// aggregate is linearizable with respect to every PUT, something a
// per-bucket lock-free map cannot offer without stopping the world.
package main

import (
	"fmt"
	"log"
	"sync"

	nr "github.com/asplos17/nr"
)

type kv struct {
	m          map[string]string
	valueBytes int64
}

type kvOp struct {
	kind byte // 'g' get, 'p' put, 'd' delete, 's' stats
	key  string
	val  string
}

type kvResp struct {
	val   string
	keys  int64
	bytes int64
	ok    bool
}

func newKV() nr.Sequential[kvOp, kvResp] { return &kv{m: make(map[string]string)} }

func (s *kv) Execute(op kvOp) kvResp {
	switch op.kind {
	case 'g':
		v, ok := s.m[op.key]
		return kvResp{val: v, ok: ok}
	case 'p':
		if old, ok := s.m[op.key]; ok {
			s.valueBytes -= int64(len(old))
		}
		s.m[op.key] = op.val
		s.valueBytes += int64(len(op.val))
		return kvResp{ok: true}
	case 'd':
		if old, ok := s.m[op.key]; ok {
			s.valueBytes -= int64(len(old))
			delete(s.m, op.key)
			return kvResp{ok: true}
		}
		return kvResp{}
	case 's':
		return kvResp{keys: int64(len(s.m)), bytes: s.valueBytes, ok: true}
	}
	return kvResp{}
}

func (s *kv) IsReadOnly(op kvOp) bool { return op.kind == 'g' || op.kind == 's' }

func main() {
	inst, err := nr.New(newKV, nr.WithNodes(2, 6, 1))
	if err != nil {
		log.Fatal(err)
	}

	const writers, readers = 4, 4
	const opsPer = 8000
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		h, err := inst.Register()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(w int, h *nr.Handle[kvOp, kvResp]) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%100)
				h.Execute(kvOp{kind: 'p', key: key, val: "value-of-fixed-size"})
				if i%10 == 9 {
					h.Execute(kvOp{kind: 'd', key: key})
				}
			}
		}(w, h)
	}

	// Readers check the invariant the aggregate guarantees: STATS is a
	// consistent snapshot, so bytes must always equal keys × valueSize
	// (every value in this workload has the same length).
	const valueSize = int64(len("value-of-fixed-size"))
	for r := 0; r < readers; r++ {
		h, err := inst.Register()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(h *nr.Handle[kvOp, kvResp]) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				st := h.Execute(kvOp{kind: 's'})
				if st.bytes != st.keys*valueSize {
					log.Fatalf("torn snapshot: %d keys but %d bytes", st.keys, st.bytes)
				}
			}
		}(h)
	}
	wg.Wait()

	h, _ := inst.Register()
	st := h.Execute(kvOp{kind: 's'})
	fmt.Printf("final: %d keys, %d value bytes — every STATS snapshot was consistent\n",
		st.keys, st.bytes)
}
