# Test tiers. tier1 is the gate every change must pass; tier2 adds vet and
# the race detector; chaos replays the seeded fault-injection schedules
# (internal/chaos, seeds 1 / 42 / 0xc0ffee / 0xdeadbeef) under -race.

GO ?= go

.PHONY: tier1 tier2 chaos test build vet race

tier1: ## build + unit tests (the acceptance gate)
	$(GO) build ./...
	$(GO) test ./...

tier2: ## vet + full race-detector run
	$(GO) vet ./...
	$(GO) test -race ./...

chaos: ## fault-injection suite under the race detector, fixed seeds
	$(GO) test -race -count=1 -v ./internal/chaos/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...
