# Test tiers. tier1 is the gate every change must pass; tier2 adds the race
# detector; chaos replays the seeded fault-injection schedules
# (internal/chaos, seeds 1 / 42 / 0xc0ffee / 0xdeadbeef) under -race.

GO ?= go

.PHONY: tier1 tier2 chaos test build vet race bench

tier1: ## build + vet + unit tests (the acceptance gate)
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

tier2: ## vet + full race-detector run
	$(GO) vet ./...
	$(GO) test -race ./...

chaos: ## fault-injection suite under the race detector, fixed seeds
	$(GO) test -race -count=1 -v ./internal/chaos/

bench: ## real-implementation benchmark, machine-readable output
	$(GO) run ./cmd/nrbench -real -threads 8 -json BENCH_PR2.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...
