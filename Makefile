# Test tiers. tier1 is the gate every change must pass; tier1-race runs the
# protocol-critical packages under the race detector; tier2 adds the race
# detector everywhere; chaos replays the seeded fault-injection schedules
# (internal/chaos, seeds 1 / 42 / 0xc0ffee / 0xdeadbeef) under -race.
# lint runs nrlint, the NR-specific static analyzers (DESIGN.md §10).

GO ?= go

# Where make bench writes its JSON result. Parameterized so a later PR's
# committed trajectory (BENCH_PR*.json) is never silently overwritten by a
# default run: bump the default each PR, or override with
# `make bench BENCH_OUT=/tmp/bench.json`.
BENCH_OUT ?= BENCH_PR10.json

# The packages where a data race is a protocol bug, not just a test bug.
RACE_PKGS = ./internal/core ./internal/log ./internal/rwlock ./internal/trace ./internal/obs ./internal/obs/tsdb ./internal/obs/prom ./cmd/nrtop

.PHONY: tier1 tier1-race tier2 chaos chaos-recover check test build vet race bench lint

tier1: ## build + vet + lint + unit tests (the acceptance gate)
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/nrlint ./...
	$(GO) test ./...

tier1-race: ## race detector on the protocol-critical packages
	$(GO) test -race $(RACE_PKGS)

lint: ## nrlint: NR layout, hot-path, and concurrency-contract invariants (DESIGN.md §10)
	$(GO) run ./cmd/nrlint -v ./...

lint-sarif: ## nrlint with machine-readable output for code scanning
	$(GO) run ./cmd/nrlint -json -sarif nrlint.sarif ./... > nrlint.json

check: tier1 tier1-race ## the default pre-commit gate: tier1 + race tier

tier2: ## vet + full race-detector run
	$(GO) vet ./...
	$(GO) test -race ./...

chaos: ## fault-injection suite under the race detector, fixed seeds
	$(GO) test -race -count=1 -v ./internal/chaos/

chaos-recover: ## kill-and-recover matrix only: crash/SIGKILL/torn-tail recovery under -race
	$(GO) test -race -count=1 -v -run 'Recover|KillAndRecover' ./internal/chaos/

bench: ## real-implementation benchmark: recorder overhead + shard and multi-log sweeps + persistence cost + batch-policy ladder + telemetry cost
	$(GO) run ./cmd/nrbench -tracecmp -persistcmp -batchcmp -assertbatch 2 -obscmp -threads 8 -shards 1,2,4,8 -logs 1,2,4 -json $(BENCH_OUT)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...
