// Continuous-telemetry surface of the nr package: WithTelemetry attaches
// internal/obs/tsdb's windowed collector to an instance — cumulative
// counters, gauges, and raw histogram buckets captured on a cadence into a
// fixed ring, derived into per-window rates and tail latencies on demand —
// and WithSLO layers per-window latency objectives on top, with breaches
// chained into the flight recorder's auto-dump so the seconds leading up to
// a bad window are preserved. See DESIGN.md "Continuous telemetry".
package nr

import (
	"time"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/obs"
	"github.com/asplos17/nr/internal/obs/tsdb"
	"github.com/asplos17/nr/internal/shard"
)

// Telemetry is the windowed collector attached by WithTelemetry; read it
// via Instance.Telemetry / ShardedInstance.Telemetry. Snapshot returns the
// retained windows oldest-first, Last the most recent one, SLOStatuses the
// tracked objectives.
type Telemetry = tsdb.Collector

// TelemetryWindow is one derived interval: per-second rates from counter
// deltas, tail latencies from histogram-bucket deltas, gauges from the
// window's closing capture.
type TelemetryWindow = tsdb.Window

// SLO is one windowed latency objective; attach with WithSLO.
type SLO = tsdb.SLO

// SLOStatus is the tracker's view of one objective: the most recent judged
// window's tails, whether it breached, and the error-budget burn.
type SLOStatus = tsdb.SLOStatus

// BreachEvent describes one SLO breach, delivered to WithSLONotify's
// callback (rate-limited; see WithTelemetry).
type BreachEvent = tsdb.BreachEvent

// telemetryConfig accumulates the telemetry options in settings.
type telemetryConfig struct {
	interval time.Duration
	windows  int
	slos     []tsdb.SLO
	onBreach func(BreachEvent)
}

func (s *settings) telemetryCfg() *telemetryConfig {
	if s.telemetry == nil {
		s.telemetry = &telemetryConfig{}
	}
	// The collector reads raw buckets from the built-in metrics observer.
	s.metrics = true
	return s.telemetry
}

// WithTelemetry attaches a windowed telemetry collector: every interval it
// captures the instance's cumulative counters, gauges, and raw histogram
// buckets into a ring retaining the last windows intervals, from which
// Telemetry derives per-window throughput, batch distributions, latency
// tails, replica lag, and WAL durability lag. Zero interval and windows
// mean the defaults (1s, 120 windows). Implies WithMetrics. The collector
// stops with Instance.Close.
func WithTelemetry(interval time.Duration, windows int) Option {
	return func(s *settings) {
		t := s.telemetryCfg()
		t.interval = interval
		t.windows = windows
	}
}

// WithSLO tracks a per-window latency objective for one operation class:
// every telemetry window with traffic in the class is judged against the
// p99 and p999 bounds (zero bounds are not checked), feeding SLOStatus'
// breach counts and error-budget burn. Implies WithTelemetry at the default
// cadence unless one is configured explicitly. On a breach, the flight
// recorder's AutoDump fires (when the instance has one), preserving the
// protocol events leading up to the bad window.
func WithSLO(class OpClass, p99, p999 time.Duration) Option {
	return func(s *settings) {
		t := s.telemetryCfg()
		t.slos = append(t.slos, tsdb.SLO{Class: class, P99: p99, P999: p999})
	}
}

// WithSLONotify installs fn to be called on SLO breaches (after the flight
// recorder's auto-dump), rate-limited to one call per 30s. fn runs on the
// telemetry goroutine and must not block.
func WithSLONotify(fn func(BreachEvent)) Option {
	return func(s *settings) {
		s.telemetryCfg().onBreach = fn
	}
}

// Telemetry returns the windowed collector, nil unless the instance was
// built with WithTelemetry/WithSLO.
func (i *Instance[O, R]) Telemetry() *Telemetry { return i.tel }

// Telemetry returns the windowed collector (aggregated across shards), nil
// unless built with WithTelemetry/WithSLO.
func (i *ShardedInstance[O, R]) Telemetry() *Telemetry { return i.tel }

// startTelemetry builds and starts the collector for a plain instance.
func startTelemetry[O, R any](inst *Instance[O, R], t *telemetryConfig) *tsdb.Collector {
	var observed []*obs.Metrics
	if m := inst.inner.ObservedMetrics(); m != nil {
		observed = append(observed, m)
	}
	c := tsdb.New(tsdb.Config{
		Interval: t.interval,
		Windows:  t.windows,
		Source:   instanceSource(inst),
		Observed: observed,
		SLOs:     t.slos,
		OnBreach: breachChain(inst.inner.TraceRecorder().AutoDump, t.onBreach),
	})
	c.Start()
	return c
}

// instanceSource builds the collector's gauge source for one instance. The
// scratch snapshot is reused across ticks — the collector serializes calls.
func instanceSource[O, R any](inst *Instance[O, R]) func(*tsdb.Gauges) {
	var m Metrics
	return func(g *tsdb.Gauges) {
		inst.MetricsInto(&m, false)
		resetGauges(g)
		addMetricsToGauges(g, &m)
	}
}

// startShardedTelemetry builds and starts the aggregate collector for a
// sharded instance: per-shard gauges are summed (occupancy takes the
// fullest shard — the bottleneck), per-shard observers merge bucket-wise
// inside the collector.
func startShardedTelemetry[O, R any](inst *ShardedInstance[O, R], t *telemetryConfig) *tsdb.Collector {
	var observed []*obs.Metrics
	for s := 0; s < inst.inner.Shards(); s++ {
		if m := inst.inner.Shard(s).ObservedMetrics(); m != nil {
			observed = append(observed, m)
		}
	}
	c := tsdb.New(tsdb.Config{
		Interval: t.interval,
		Windows:  t.windows,
		Source:   shardedSource(inst.inner),
		Observed: observed,
		SLOs:     t.slos,
		OnBreach: breachChain(inst.inner.Shard(0).TraceRecorder().AutoDump, t.onBreach),
	})
	c.Start()
	return c
}

// shardedSource builds the aggregate gauge source: per-shard snapshots into
// reused scratch, folded into one Gauges.
func shardedSource[O, R any](inner *shard.Instance[O, R]) func(*tsdb.Gauges) {
	ms := make([]Metrics, inner.Shards())
	return func(g *tsdb.Gauges) {
		resetGauges(g)
		for s := 0; s < inner.Shards(); s++ {
			inner.Shard(s).MetricsInto(&ms[s], false)
			addMetricsToGauges(g, &ms[s])
		}
	}
}

// resetGauges zeroes g while keeping its Replicas capacity.
func resetGauges(g *tsdb.Gauges) {
	replicas := g.Replicas[:0]
	*g = tsdb.Gauges{Replicas: replicas}
}

// addMetricsToGauges folds one core snapshot into g: counters and log
// positions summed, occupancy taking the fullest log (the bottleneck),
// per-node replica gauges summed index-wise, WAL counters summed with
// durable lag from the snapshot's own pairing.
func addMetricsToGauges(g *tsdb.Gauges, m *core.Metrics) {
	g.ReadOps += m.Stats.ReadOps
	g.UpdateOps += m.Stats.UpdateOps
	g.Combines += m.Stats.Combines
	g.CombinedOps += m.Stats.CombinedOps
	g.ReaderRefreshes += m.Stats.ReaderRefreshes
	g.HelpedEntries += m.Stats.HelpedEntries
	g.ParallelOps += m.Stats.ParallelOps
	g.ReaderAcquires += m.Stats.ReaderAcquires
	g.Panics += m.Stats.Panics
	g.Stalls += m.Stats.Stalls

	g.LogTail += m.Log.Tail
	g.LogCompleted += m.Log.Completed
	if m.Log.Occupancy > g.LogOccupancy {
		g.LogOccupancy = m.Log.Occupancy
	}
	for _, r := range m.Replicas {
		for len(g.Replicas) <= r.Node {
			g.Replicas = append(g.Replicas, tsdb.ReplicaGauge{Node: len(g.Replicas)})
		}
		a := &g.Replicas[r.Node]
		a.CompletedLag += r.CompletedLag
		a.ReaderAcquires += r.ReaderAcquires
		if a.CompletedLag > g.MaxReplicaLag {
			g.MaxReplicaLag = a.CompletedLag
		}
	}
	if m.Persist != nil {
		g.HasWAL = true
		g.WALAppends += m.Persist.Appends
		g.WALPages += m.Persist.Pages
		g.WALFsyncs += m.Persist.Fsyncs
		g.WALFsyncNanos += m.Persist.FsyncNanos
		g.WALSealStalls += m.Persist.SealStalls
		g.DurableIndex += m.Persist.DurableIndex
		g.DurableLag += m.Persist.DurableLag
	}
}

// breachChain wires a breach into the flight recorder's auto-dump (nil-safe
// — AutoDump on a nil recorder is a no-op, and the dump itself is
// rate-limited) before the user's callback.
func breachChain(autoDump func(string), user func(BreachEvent)) func(tsdb.BreachEvent) {
	return func(ev tsdb.BreachEvent) {
		autoDump("slo-breach-" + ev.Status.Class)
		if user != nil {
			user(ev)
		}
	}
}
