module github.com/asplos17/nr

go 1.24
