package nr_test

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	nr "github.com/asplos17/nr"
)

func newRegister() nr.Sequential[regOp, int] { return &register{} }

func TestOptionsConfigureTopology(t *testing.T) {
	inst, err := nr.New(newRegister, nr.WithNodes(3, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Replicas() != 3 {
		t.Errorf("Replicas = %d, want 3", inst.Replicas())
	}
	// 3 nodes × 2 threads: exactly 6 registrations succeed.
	for k := 0; k < 6; k++ {
		if _, err := inst.Register(); err != nil {
			t.Fatalf("registration %d failed: %v", k, err)
		}
	}
	if _, err := inst.Register(); err == nil {
		t.Error("7th registration on a 6-thread topology succeeded")
	}
}

func TestWithConfigComposesWithLaterOptions(t *testing.T) {
	// WithConfig is a base; later options override its fields.
	inst, err := nr.New(newRegister,
		nr.WithConfig(nr.Config{Nodes: 4, CoresPerNode: 2, SMT: 1, LogEntries: 512}),
		nr.WithNodes(2, 2, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Replicas() != 2 {
		t.Errorf("Replicas = %d, want 2 (later option should win)", inst.Replicas())
	}
}

func TestNewWithConfigShim(t *testing.T) {
	inst, err := nr.NewWithConfig(newRegister, nr.Config{Nodes: 2, CoresPerNode: 1, SMT: 1, LogEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Replicas() != 2 {
		t.Errorf("Replicas = %d, want 2", inst.Replicas())
	}
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(regOp{write: true, val: 9})
	if got := h.Execute(regOp{}); got != 9 {
		t.Errorf("read = %d, want 9", got)
	}
}

func TestWithMetricsPopulatesObserved(t *testing.T) {
	inst, err := nr.New(newRegister, nr.WithNodes(2, 2, 1), nr.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	const writes, reads = 50, 150
	for k := 0; k < writes; k++ {
		h.Execute(regOp{write: true, val: k})
	}
	for k := 0; k < reads; k++ {
		h.Execute(regOp{})
	}
	m := inst.Metrics()
	if m.Observed == nil {
		t.Fatal("Metrics().Observed == nil on an instance built WithMetrics")
	}
	if m.Observed.Read.Count != reads {
		t.Errorf("observed reads = %d, want %d", m.Observed.Read.Count, reads)
	}
	if m.Observed.Update.Count != writes {
		t.Errorf("observed updates = %d, want %d", m.Observed.Update.Count, writes)
	}
	if m.Stats.ReadOps != reads || m.Stats.UpdateOps != writes {
		t.Errorf("Stats = %d/%d, want %d/%d", m.Stats.ReadOps, m.Stats.UpdateOps, reads, writes)
	}
	// The snapshot marshals to JSON (the export surfaces depend on this).
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("Metrics snapshot does not marshal: %v", err)
	}
}

func TestWithoutMetricsObservedIsNil(t *testing.T) {
	inst, err := nr.New(newRegister, nr.WithNodes(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m := inst.Metrics(); m.Observed != nil {
		t.Error("Observed non-nil without WithMetrics")
	}
}

// countingObserver counts OpDone events through the public Observer alias.
type countingObserver struct {
	nr.NopObserver
	n  int64
	mu sync.Mutex
}

func (c *countingObserver) OpDone(node int, class nr.OpClass, elapsed time.Duration) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func TestWithObserverComposesWithWithMetrics(t *testing.T) {
	co := &countingObserver{}
	inst, err := nr.New(newRegister, nr.WithNodes(1, 2, 1), nr.WithObserver(co), nr.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	for k := 0; k < total; k++ {
		h.Execute(regOp{write: k%2 == 0, val: k})
	}
	co.mu.Lock()
	seen := co.n
	co.mu.Unlock()
	if seen != total {
		t.Errorf("custom observer saw %d OpDone events, want %d", seen, total)
	}
	m := inst.Metrics()
	if m.Observed == nil {
		t.Fatal("built-in metrics lost when composed with a custom observer")
	}
	if got := m.Observed.Read.Count + m.Observed.Update.Count; got != total {
		t.Errorf("built-in metrics saw %d ops, want %d", got, total)
	}
}

func TestWithObserverNilIsIgnored(t *testing.T) {
	inst, err := nr.New(newRegister, nr.WithNodes(1, 1, 1), nr.WithObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Execute(regOp{write: true, val: 3}); got != 3 {
		t.Errorf("Execute = %d, want 3", got)
	}
}

func TestRegisterAfterCloseReturnsErrClosed(t *testing.T) {
	inst, err := nr.New(newRegister, nr.WithNodes(2, 2, 1), nr.WithDedicatedCombiners())
	if err != nil {
		t.Fatal(err)
	}
	inst.Close()
	if _, err := inst.Register(); !errors.Is(err, nr.ErrClosed) {
		t.Errorf("Register after Close: err = %v, want nr.ErrClosed", err)
	}
	if _, err := inst.RegisterOnNode(0); !errors.Is(err, nr.ErrClosed) {
		t.Errorf("RegisterOnNode after Close: err = %v, want nr.ErrClosed", err)
	}
}

func TestWithStallThresholdSurfacesStalls(t *testing.T) {
	inst, err := nr.New(newRegister, nr.WithNodes(1, 2, 1), nr.WithStallThreshold(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(regOp{write: true, val: 1})
	if hl := inst.Health(); hl.Poisoned || len(hl.StalledNodes) != 0 {
		t.Errorf("healthy instance reports %+v", hl)
	}
}
