// Unified execution surface of the nr package: Executor abstracts over
// *Instance and *ShardedInstance so code that drives a replicated structure
// — containers, servers, benchmarks, chaos harnesses — is written once and
// runs against either deployment shape. See DESIGN.md §4 and README
// "The Executor interface".
package nr

// OpExecutor executes operations on behalf of one registered goroutine —
// the common surface of *Handle and *ShardedHandle. Like the concrete
// handles, an OpExecutor is not safe for concurrent use; obtain one per
// goroutine via Executor.RegisterExecutor.
//
// Implementations beyond the two handle types are welcome (the miniredis
// baselines wrap locks in the same shape), but an OpExecutor obtained from
// RegisterExecutor may always be type-asserted back to its concrete handle
// when the extra methods (PostAndAbandon, ExecuteAll, LastToken) matter.
type OpExecutor[O, R any] interface {
	// Execute runs op with the instance's full consistency guarantees,
	// re-raising contained user panics (see Handle.Execute).
	Execute(op O) R
	// TryExecute runs op, reporting contained failures as errors (see
	// Handle.TryExecute).
	TryExecute(op O) (R, error)
	// Node returns the NUMA node this executor is bound to.
	Node() int
}

// Executor is the uniform instance surface satisfied by both *Instance and
// *ShardedInstance: registration, observability, and lifecycle. Code that
// takes an Executor works unchanged over a single shared log or a
// hash-partitioned one — the collections containers, the miniredis
// keyspace, the chaos harness, and nrbench all consume this interface
// rather than duplicating single/sharded wiring.
type Executor[O, R any] interface {
	// RegisterExecutor binds the calling goroutine to the next
	// hardware-thread position and returns its per-goroutine executor. It
	// is Register with the concrete handle type erased; the returned value
	// is the same *Handle or *ShardedHandle the typed method would return.
	RegisterExecutor() (OpExecutor[O, R], error)
	// Stats returns the instance's internal counters (for sharded
	// instances, per-shard counters summed).
	Stats() Stats
	// Metrics returns the unified observability snapshot (for sharded
	// instances, the aggregate; see ShardedInstance.ShardMetrics for the
	// per-shard breakdown).
	Metrics() Metrics
	// Health reports the failure state (for sharded instances, the
	// aggregate: poisoned if any shard is).
	Health() Health
	// Quiesce brings every replica up to date with all completed
	// operations.
	Quiesce()
	// Close stops background goroutines and flushes persistence, if
	// configured. Idempotent.
	Close()
}

// Both deployment shapes satisfy Executor; a compile error here means the
// interface and the concrete types have drifted.
var (
	_ Executor[int, int]   = (*Instance[int, int])(nil)
	_ Executor[int, int]   = (*ShardedInstance[int, int])(nil)
	_ OpExecutor[int, int] = (*Handle[int, int])(nil)
	_ OpExecutor[int, int] = (*ShardedHandle[int, int])(nil)
)

// RegisterExecutor implements Executor; it is Register returning the
// interface type.
func (i *Instance[O, R]) RegisterExecutor() (OpExecutor[O, R], error) {
	h, err := i.Register()
	if err != nil {
		return nil, err
	}
	return h, nil
}

// RegisterExecutor implements Executor; it is Register returning the
// interface type.
func (i *ShardedInstance[O, R]) RegisterExecutor() (OpExecutor[O, R], error) {
	h, err := i.Register()
	if err != nil {
		return nil, err
	}
	return h, nil
}
