// Benchmarks driving the REAL implementation (not the simulator), one per
// table/figure of the paper's evaluation. On a machine without many cores
// these measure per-operation overhead and contention behaviour under the
// Go scheduler; the full 112-thread sweeps that regenerate the figures'
// curves live in cmd/nrbench (deterministic NUMA simulator). Run with:
//
//	go test -bench=. -benchmem
package nr_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/asplos17/nr/internal/baseline"
	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/ds"
	"github.com/asplos17/nr/internal/lockfree"
	"github.com/asplos17/nr/internal/miniredis"
	"github.com/asplos17/nr/internal/numastack"
	"github.com/asplos17/nr/internal/topology"
	"github.com/asplos17/nr/internal/workload"
)

// benchTopo sizes the software topology to the host so every parallel
// benchmark goroutine can register.
func benchTopo() topology.Topology {
	procs := runtime.GOMAXPROCS(0)
	return topology.New(2, max(procs, 2), 2)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// newMethod builds a concurrent wrapper around seq() for the named method.
func newMethod[O, R any](b *testing.B, method string, seq func() core.Sequential[O, R]) baseline.Shared[O, R] {
	b.Helper()
	topo := benchTopo()
	switch method {
	case "NR":
		inst, err := core.New[O, R](seq, core.Options{Topology: topo})
		if err != nil {
			b.Fatal(err)
		}
		return &baseline.NRAdapter[O, R]{Inst: inst}
	case "SL":
		return baseline.NewSpinLocked[O, R](seq())
	case "RWL":
		return baseline.NewRWLocked[O, R](seq(), topo.TotalThreads())
	case "FC":
		return baseline.NewFlatCombining[O, R](seq(), topo.TotalThreads())
	case "FC+":
		return baseline.NewFlatCombiningPlus[O, R](seq(), topo.TotalThreads())
	}
	b.Fatalf("unknown method %s", method)
	return nil
}

var allMethods = []string{"NR", "SL", "RWL", "FC", "FC+"}

// runShared drives a Shared structure with RunParallel; gen produces the
// next operation for a thread.
func runShared[O, R any](b *testing.B, s baseline.Shared[O, R], gen func(rng *workload.RNG) O) {
	b.Helper()
	handles := make(chan baseline.Executor[O, R], 256)
	for i := 0; i < 256; i++ {
		ex, err := s.Register()
		if err != nil {
			break // topology full; RunParallel will use what we have
		}
		handles <- ex
	}
	var seedCounter uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ex := <-handles
		seedCounter++
		rng := workload.NewRNG(seedCounter * 0x9e3779b97f4a7c15)
		for pb.Next() {
			ex.Execute(gen(rng))
		}
		handles <- ex
	})
}

// pqGen produces the §8.1 priority-queue mix.
func pqGen(mix workload.Mix, keys workload.KeyDist) func(rng *workload.RNG) ds.PQOp {
	return func(rng *workload.RNG) ds.PQOp {
		switch mix.Kind(rng) {
		case workload.OpAdd:
			return ds.PQOp{Kind: ds.PQInsert, Key: keys.Key(rng)}
		case workload.OpRemove:
			return ds.PQOp{Kind: ds.PQDeleteMin}
		default:
			return ds.PQOp{Kind: ds.PQFindMin}
		}
	}
}

// BenchmarkFig5_SkipListPQ reproduces Figure 5 (a-d) on the real skip-list
// priority queue: method × update ratio, 200K-element prefill.
func BenchmarkFig5_SkipListPQ(b *testing.B) {
	for _, method := range allMethods {
		for _, upd := range []float64{0, 0.1, 1.0} {
			b.Run(fmt.Sprintf("%s/upd=%.0f%%", method, upd*100), func(b *testing.B) {
				s := newMethod(b, method, func() core.Sequential[ds.PQOp, ds.PQResult] {
					pq := ds.NewSkipListPQ(7)
					rng := workload.NewRNG(7)
					for i := 0; i < 200000; i++ {
						pq.Execute(ds.PQOp{Kind: ds.PQInsert, Key: int64(rng.Next() % (1 << 40))})
					}
					return pq
				})
				gen := pqGen(workload.NewMix(upd), workload.NewUniform(1<<40))
				runShared(b, s, gen)
			})
		}
	}
}

// BenchmarkFig6_PairingHeapPQ reproduces Figure 6 on the pairing heap.
func BenchmarkFig6_PairingHeapPQ(b *testing.B) {
	for _, method := range allMethods {
		for _, upd := range []float64{0.1, 1.0} {
			b.Run(fmt.Sprintf("%s/upd=%.0f%%", method, upd*100), func(b *testing.B) {
				s := newMethod(b, method, func() core.Sequential[ds.PQOp, ds.PQResult] {
					pq := ds.NewHeapPQ()
					rng := workload.NewRNG(11)
					for i := 0; i < 200000; i++ {
						pq.Execute(ds.PQOp{Kind: ds.PQInsert, Key: int64(rng.Next() % (1 << 40))})
					}
					return pq
				})
				gen := pqGen(workload.NewMix(upd), workload.NewUniform(1<<40))
				runShared(b, s, gen)
			})
		}
	}
}

// dictGen produces the §8.1.3 dictionary mix over a key distribution.
func dictGen(mix workload.Mix, keys workload.KeyDist) func(rng *workload.RNG) ds.DictOp {
	return func(rng *workload.RNG) ds.DictOp {
		k := keys.Key(rng)
		switch mix.Kind(rng) {
		case workload.OpAdd:
			return ds.DictOp{Kind: ds.DictInsert, Key: k, Value: uint64(k)}
		case workload.OpRemove:
			return ds.DictOp{Kind: ds.DictDelete, Key: k}
		default:
			return ds.DictOp{Kind: ds.DictLookup, Key: k}
		}
	}
}

// BenchmarkFig7_SkipListDict reproduces Figure 7: uniform and zipf(1.5)
// keys, 10% and 100% updates.
func BenchmarkFig7_SkipListDict(b *testing.B) {
	dists := map[string]func() workload.KeyDist{
		"uniform": func() workload.KeyDist { return workload.NewUniform(400000) },
		"zipf":    func() workload.KeyDist { return workload.NewZipf(400000, 1.5) },
	}
	for _, method := range allMethods {
		for distName, mk := range dists {
			for _, upd := range []float64{0.1, 1.0} {
				b.Run(fmt.Sprintf("%s/%s/upd=%.0f%%", method, distName, upd*100), func(b *testing.B) {
					s := newMethod(b, method, func() core.Sequential[ds.DictOp, ds.DictResult] {
						d := ds.NewSkipListDict(13)
						rng := workload.NewRNG(13)
						for i := 0; i < 200000; i++ {
							d.Execute(ds.DictOp{Kind: ds.DictInsert, Key: int64(rng.Next() % 400000), Value: 1})
						}
						return d
					})
					gen := dictGen(workload.NewMix(upd), mk())
					runShared(b, s, gen)
				})
			}
		}
	}
}

// BenchmarkFig7_LockFreeDict measures the LF baseline of Figure 7 (the
// Herlihy–Shavit lock-free skip list) under both key distributions.
func BenchmarkFig7_LockFreeDict(b *testing.B) {
	for distName, mk := range map[string]func() workload.KeyDist{
		"uniform": func() workload.KeyDist { return workload.NewUniform(400000) },
		"zipf":    func() workload.KeyDist { return workload.NewZipf(400000, 1.5) },
	} {
		for _, upd := range []float64{0.1, 1.0} {
			b.Run(fmt.Sprintf("LF/%s/upd=%.0f%%", distName, upd*100), func(b *testing.B) {
				s := lockfree.NewSkipList()
				mix := workload.NewMix(upd)
				keys := mk()
				var seed uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					seed++
					rng := workload.NewRNG(seed * 77)
					for pb.Next() {
						k := keys.Key(rng)
						switch mix.Kind(rng) {
						case workload.OpAdd:
							s.Insert(k, uint64(k))
						case workload.OpRemove:
							s.Delete(k)
						default:
							s.Contains(k)
						}
					}
				})
				b.ReportMetric(float64(s.FailedCAS()), "failedCAS")
			})
		}
	}
}

// BenchmarkFig8_Stack reproduces Figure 8: push/pop mix over every method
// including the lock-free Treiber stack and the NUMA-aware elimination
// stack.
func BenchmarkFig8_Stack(b *testing.B) {
	for _, method := range allMethods {
		b.Run(method, func(b *testing.B) {
			s := newMethod(b, method, func() core.Sequential[ds.StackOp, ds.StackResult] {
				st := ds.NewSeqStack(256)
				for i := int64(0); i < 64; i++ {
					st.Execute(ds.StackOp{Kind: ds.StackPush, Value: i})
				}
				return st
			})
			runShared(b, s, func(rng *workload.RNG) ds.StackOp {
				if rng.Intn(2) == 0 {
					return ds.StackOp{Kind: ds.StackPush, Value: int64(rng.Next())}
				}
				return ds.StackOp{Kind: ds.StackPop}
			})
		})
	}
	b.Run("LF-treiber", func(b *testing.B) {
		s := lockfree.NewTreiberStack[int64]()
		var seed uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			seed++
			rng := workload.NewRNG(seed * 31)
			for pb.Next() {
				if rng.Intn(2) == 0 {
					s.Push(int64(rng.Next()))
				} else {
					s.Pop()
				}
			}
		})
	})
	b.Run("NA-elimination", func(b *testing.B) {
		s := numastack.New(benchTopo(), 8)
		handles := make(chan *numastack.Handle, 64)
		for i := 0; i < 64; i++ {
			h, err := s.Register()
			if err != nil {
				break
			}
			handles <- h
		}
		var seed uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			h := <-handles
			seed++
			rng := workload.NewRNG(seed * 93)
			for pb.Next() {
				if rng.Intn(2) == 0 {
					h.Push(int64(rng.Next()))
				} else {
					h.Pop()
				}
			}
			handles <- h
		})
	})
}

// BenchmarkFig9_Synthetic reproduces Figure 9: the padded buffer with
// n=200K entries and c=8 lines per operation.
func BenchmarkFig9_Synthetic(b *testing.B) {
	for _, method := range allMethods {
		for _, upd := range []float64{0.1, 1.0} {
			b.Run(fmt.Sprintf("%s/upd=%.0f%%", method, upd*100), func(b *testing.B) {
				s := newMethod(b, method, func() core.Sequential[ds.BufferOp, ds.BufferResult] {
					return ds.NewSeqBuffer(200000)
				})
				mix := workload.NewMix(upd)
				runShared(b, s, func(rng *workload.RNG) ds.BufferOp {
					return ds.BufferOp{
						Update: mix.Kind(rng) != workload.OpRead,
						Seed:   rng.Next(),
						C:      8,
					}
				})
			})
		}
	}
}

// BenchmarkFig10_CacheLinesPerOp reproduces Figure 10's x axis: the effect
// of c (cache lines touched per operation) on NR.
func BenchmarkFig10_CacheLinesPerOp(b *testing.B) {
	for _, c := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("NR/c=%d", c), func(b *testing.B) {
			s := newMethod(b, "NR", func() core.Sequential[ds.BufferOp, ds.BufferResult] {
				return ds.NewSeqBuffer(200000)
			})
			runShared(b, s, func(rng *workload.RNG) ds.BufferOp {
				return ds.BufferOp{Update: true, Seed: rng.Next(), C: c}
			})
		})
	}
}

// BenchmarkFig11_Redis reproduces Figure 11: the mini-Redis sorted set
// (10K items) under the YCSB-style ZRANK/ZINCRBY mixes, invoking operations
// directly after the RPC layer as the paper does.
func BenchmarkFig11_Redis(b *testing.B) {
	members := make([]string, 10000)
	for i := range members {
		members[i] = fmt.Sprintf("item:%05d", i)
	}
	for _, method := range []string{"NR", "SL", "RWL", "FC", "FC+"} {
		for _, upd := range []float64{0.1, 0.5, 1.0} {
			b.Run(fmt.Sprintf("%s/upd=%.0f%%", method, upd*100), func(b *testing.B) {
				s := newMethod(b, method, func() core.Sequential[miniredis.StoreOp, miniredis.StoreResult] {
					st := miniredis.NewStore(3)
					for i, m := range members {
						st.Execute(miniredis.StoreOp{Cmd: miniredis.CmdZAdd, Key: "zset", Member: m, Score: float64(i)})
					}
					return st
				})
				mix := workload.NewMix(upd)
				runShared(b, s, func(rng *workload.RNG) miniredis.StoreOp {
					m := members[rng.Intn(len(members))]
					if mix.Kind(rng) == workload.OpRead {
						return miniredis.StoreOp{Cmd: miniredis.CmdZRank, Key: "zset", Member: m}
					}
					return miniredis.StoreOp{Cmd: miniredis.CmdZIncrBy, Key: "zset", Member: m, Score: 1}
				})
			})
		}
	}
}

// BenchmarkTableMemory reproduces the memory tables (Fig. 5f, 6c, 7e): MB
// consumed by NR (4 replicas + log) versus a single sequential copy, for a
// 200K-element structure. The MB metric is the deliverable; ns/op is noise.
func BenchmarkTableMemory(b *testing.B) {
	builders := []struct {
		name   string
		nr     func() float64
		single func() float64
	}{
		{"skiplistpq",
			func() float64 {
				inst, err := core.New[ds.PQOp, ds.PQResult](
					func() core.Sequential[ds.PQOp, ds.PQResult] { return ds.NewSkipListPQ(1) },
					core.Options{Topology: topology.Intel4x14x2(), LogEntries: 1 << 16})
				if err != nil {
					b.Fatal(err)
				}
				h, _ := inst.Register()
				for k := 0; k < 200000; k++ {
					h.Execute(ds.PQOp{Kind: ds.PQInsert, Key: int64(k)})
				}
				inst.Quiesce()
				mb := heapMB()
				_ = inst.Stats()
				return mb
			},
			func() float64 {
				pq := ds.NewSkipListPQ(1)
				for k := 0; k < 200000; k++ {
					pq.Execute(ds.PQOp{Kind: ds.PQInsert, Key: int64(k)})
				}
				mb := heapMB()
				_ = pq.Len()
				return mb
			}},
		{"pairingheap",
			func() float64 {
				inst, err := core.New[ds.PQOp, ds.PQResult](
					func() core.Sequential[ds.PQOp, ds.PQResult] { return ds.NewHeapPQ() },
					core.Options{Topology: topology.Intel4x14x2(), LogEntries: 1 << 16})
				if err != nil {
					b.Fatal(err)
				}
				h, _ := inst.Register()
				for k := 0; k < 200000; k++ {
					h.Execute(ds.PQOp{Kind: ds.PQInsert, Key: int64(k)})
				}
				inst.Quiesce()
				mb := heapMB()
				_ = inst.Stats()
				return mb
			},
			func() float64 {
				pq := ds.NewHeapPQ()
				for k := 0; k < 200000; k++ {
					pq.Execute(ds.PQOp{Kind: ds.PQInsert, Key: int64(k)})
				}
				mb := heapMB()
				_ = pq.Len()
				return mb
			}},
	}
	for _, c := range builders {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := heapMB()
				nrMB := c.nr() - base
				base = heapMB()
				singleMB := c.single() - base
				b.ReportMetric(nrMB, "NR-MB")
				b.ReportMetric(singleMB, "single-MB")
			}
		})
	}
}

// heapMB reports live heap after a GC, in MB.
func heapMB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / (1 << 20)
}

// BenchmarkTableAblation reproduces Figure 14 on the real implementation:
// throughput with each technique disabled, on the skip-list priority queue
// with 10% updates.
func BenchmarkTableAblation(b *testing.B) {
	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"full-NR", func(*core.Options) {}},
		{"no-combining", func(o *core.Options) { o.DisableCombining = true }},
		{"read-waits-logtail", func(o *core.Options) { o.ReadWaitLogTail = true }},
		{"combined-replica-lock", func(o *core.Options) { o.CombinedReplicaLock = true }},
		{"serial-replica-update", func(o *core.Options) { o.SerialReplicaUpdate = true }},
		{"centralized-reader-lock", func(o *core.Options) { o.CentralizedReaderLock = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			opts := core.Options{Topology: benchTopo()}
			v.mod(&opts)
			inst, err := core.New[ds.PQOp, ds.PQResult](
				func() core.Sequential[ds.PQOp, ds.PQResult] {
					pq := ds.NewSkipListPQ(5)
					for i := 0; i < 100000; i++ {
						pq.Execute(ds.PQOp{Kind: ds.PQInsert, Key: int64(i * 7)})
					}
					return pq
				}, opts)
			if err != nil {
				b.Fatal(err)
			}
			runShared(b, &baseline.NRAdapter[ds.PQOp, ds.PQResult]{Inst: inst},
				pqGen(workload.NewMix(0.1), workload.NewUniform(1<<40)))
		})
	}
}

// BenchmarkExtQueue is an extension beyond the paper's figures: the FIFO
// queue (§2 lists it among the canonical contended structures) under every
// method, including the Michael–Scott lock-free queue as the LF baseline.
func BenchmarkExtQueue(b *testing.B) {
	for _, method := range allMethods {
		b.Run(method, func(b *testing.B) {
			s := newMethod(b, method, func() core.Sequential[ds.QueueOp, ds.QueueResult] {
				q := ds.NewSeqQueue(1024)
				for i := int64(0); i < 128; i++ {
					q.Execute(ds.QueueOp{Kind: ds.QueueEnqueue, Value: i})
				}
				return q
			})
			runShared(b, s, func(rng *workload.RNG) ds.QueueOp {
				if rng.Intn(2) == 0 {
					return ds.QueueOp{Kind: ds.QueueEnqueue, Value: int64(rng.Next())}
				}
				return ds.QueueOp{Kind: ds.QueueDequeue}
			})
		})
	}
	b.Run("LF-msqueue", func(b *testing.B) {
		q := lockfree.NewMSQueue[int64]()
		var seed uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			seed++
			rng := workload.NewRNG(seed * 17)
			for pb.Next() {
				if rng.Intn(2) == 0 {
					q.Enqueue(int64(rng.Next()))
				} else {
					q.Dequeue()
				}
			}
		})
	})
}

// BenchmarkExtLRUCache is an extension: a shared LRU cache where even Get
// is an update (it reorders the recency list) — an operation-contention
// workload par excellence.
func BenchmarkExtLRUCache(b *testing.B) {
	for _, method := range allMethods {
		for _, hitTarget := range []string{"hot", "uniform"} {
			b.Run(fmt.Sprintf("%s/%s", method, hitTarget), func(b *testing.B) {
				s := newMethod(b, method, func() core.Sequential[ds.LRUOp, ds.LRUResult] {
					c := ds.NewSeqLRU(4096)
					for i := int64(0); i < 4096; i++ {
						c.Execute(ds.LRUOp{Kind: ds.LRUPut, Key: i, Value: uint64(i)})
					}
					return c
				})
				var keys workload.KeyDist
				if hitTarget == "hot" {
					keys = workload.NewZipf(8192, 1.5)
				} else {
					keys = workload.NewUniform(8192)
				}
				runShared(b, s, func(rng *workload.RNG) ds.LRUOp {
					k := keys.Key(rng)
					if rng.Intn(10) == 0 {
						return ds.LRUOp{Kind: ds.LRUPut, Key: k, Value: rng.Next()}
					}
					return ds.LRUOp{Kind: ds.LRUGet, Key: k}
				})
			})
		}
	}
}

// BenchmarkExtBTreeDict is an extension: the dictionary benchmarks with the
// B-tree substituted for the skip list — one constructor change, same
// concurrent structure, demonstrating the black-box property.
func BenchmarkExtBTreeDict(b *testing.B) {
	for _, upd := range []float64{0.1, 1.0} {
		b.Run(fmt.Sprintf("NR/upd=%.0f%%", upd*100), func(b *testing.B) {
			s := newMethod(b, "NR", func() core.Sequential[ds.DictOp, ds.DictResult] {
				d := ds.NewBTreeDict()
				rng := workload.NewRNG(17)
				for i := 0; i < 200000; i++ {
					d.Execute(ds.DictOp{Kind: ds.DictInsert, Key: int64(rng.Next() % 400000), Value: 1})
				}
				return d
			})
			gen := dictGen(workload.NewMix(upd), workload.NewUniform(400000))
			runShared(b, s, gen)
		})
	}
}

// BenchmarkExtFakeUpdates measures the §6 fake-update fast path: a
// delete-heavy workload over mostly-absent keys with and without the
// TryReadOnly optimization.
func BenchmarkExtFakeUpdates(b *testing.B) {
	gen := func(rng *workload.RNG) ds.DictOp {
		// 95% of deletes target absent keys.
		return ds.DictOp{Kind: ds.DictDelete, Key: int64(rng.Next() % 1_000_000)}
	}
	b.Run("with-fastpath", func(b *testing.B) {
		s := newMethod(b, "NR", func() core.Sequential[ds.DictOp, ds.DictResult] {
			d := ds.NewFastPathDict(19)
			for i := int64(0); i < 50000; i++ {
				d.Execute(ds.DictOp{Kind: ds.DictInsert, Key: i, Value: 1})
			}
			return d
		})
		runShared(b, s, gen)
	})
	b.Run("without-fastpath", func(b *testing.B) {
		s := newMethod(b, "NR", func() core.Sequential[ds.DictOp, ds.DictResult] {
			d := ds.NewSkipListDict(19)
			for i := int64(0); i < 50000; i++ {
				d.Execute(ds.DictOp{Kind: ds.DictInsert, Key: i, Value: 1})
			}
			return d
		})
		runShared(b, s, gen)
	})
}
