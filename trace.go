// Flight-recorder surface of the nr package: WithFlightRecorder attaches
// internal/trace's always-on, lock-free ring-buffer recorder to an
// instance; TraceSnapshot and the re-exported exporters turn its contents
// into per-operation spans, Chrome trace JSON (Perfetto), or a top-K
// slowest-ops report. See DESIGN.md "Tracing & flight recorder".
package nr

import (
	"io"

	"github.com/asplos17/nr/internal/trace"
)

// TraceConfig tunes the flight recorder; see WithFlightRecorder. The zero
// value is usable: 1024-slot rings, no automatic dumps, no profile
// sampling.
type TraceConfig = trace.Config

// TraceSnapshot is a point-in-time copy of the flight recorder's contents:
// every ring's sealed events, oldest first.
type TraceSnapshot = trace.Snapshot

// TraceEvent is one decoded recorder entry.
type TraceEvent = trace.Event

// OpSpan is one operation's reconstructed lifecycle; see ReconstructSpans.
type OpSpan = trace.OpSpan

// SpanPhase is one leg of an OpSpan (e.g. slot-publish → combiner-pickup).
type SpanPhase = trace.Phase

// FlightRecorder records timestamped protocol events with causal context.
// One recorder instruments one instance; build it with NewFlightRecorder
// and pass it to WithFlightRecorder, or let WithFlightRecorder build one.
type FlightRecorder = trace.Recorder

// NewFlightRecorder builds a flight recorder for WithFlightRecorder.
// Holding the recorder yourself lets you snapshot, reset, or export it
// without going through the instance.
func NewFlightRecorder(cfg TraceConfig) *FlightRecorder { return trace.New(cfg) }

// WithFlightRecorder attaches a flight recorder built from cfg: every
// registered handle and background goroutine gets a fixed-size, lock-free,
// overwrite-oldest event ring, and the protocol records each operation's
// causal milestones (slot publish, combiner pickup, log reserve/fill,
// replay, execute, respond; tail read and reader-lock acquisition for
// reads). Recording is zero-allocation and never blocks; the recorder is
// always on once attached. Snapshot via Instance.TraceSnapshot, export via
// WriteChromeTrace / WriteSlowReport.
//
// cfg.DumpDir / cfg.OnDump arm automatic black-box dumps: on a detected
// stall, a contained panic, or poisoning, the recorder persists its own
// snapshot (rate-limited) so the failure ships with its trace.
// cfg.ProfileSampleRate > 0 additionally labels every Nth operation with
// runtime/pprof labels (nr_node, nr_op) for CPU-profile attribution.
func WithFlightRecorder(cfg TraceConfig) Option {
	return func(s *settings) { s.trace = trace.New(cfg) }
}

// WithFlightRecorderInstance attaches an existing recorder (see
// NewFlightRecorder); useful when the caller wants to share its lifecycle
// with other plumbing, e.g. an HTTP debug endpoint created before the
// instance.
func WithFlightRecorderInstance(rec *FlightRecorder) Option {
	return func(s *settings) { s.trace = rec }
}

// TraceSnapshot returns a point-in-time copy of the flight recorder's
// contents. It returns the zero TraceSnapshot when the instance was built
// without WithFlightRecorder, and is safe concurrently with operations and
// with Close.
func (i *Instance[O, R]) TraceSnapshot() TraceSnapshot { return i.inner.TraceSnapshot() }

// FlightRecorder returns the attached recorder (nil without
// WithFlightRecorder), for resetting or configuring dumps after the fact.
func (i *Instance[O, R]) FlightRecorder() *FlightRecorder { return i.inner.TraceRecorder() }

// ReconstructSpans groups a snapshot's events into per-operation spans:
// each span is one op's milestones — joined across the submitting,
// combining, and replaying goroutines by the op token — ordered by time,
// with the phase breakdown the paper's performance story is made of.
func ReconstructSpans(snap TraceSnapshot) []OpSpan { return trace.Reconstruct(snap) }

// WriteChromeTrace renders snap as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing: one process per NUMA
// node, one track per submitting thread, one per combiner.
func WriteChromeTrace(w io.Writer, snap TraceSnapshot) error {
	return trace.WriteChromeTrace(w, snap)
}

// WriteSlowReport writes the top-k slowest reconstructed operations as a
// compact text report, one line per op with its phase breakdown (k <= 0
// means all).
func WriteSlowReport(w io.Writer, snap TraceSnapshot, k int) error {
	return trace.WriteSlowReport(w, snap, k)
}

// TopSlowSpans returns the k slowest spans, complete ops first (k <= 0
// means all).
func TopSlowSpans(spans []OpSpan, k int) []OpSpan { return trace.TopSlow(spans, k) }

// FormatSpan renders one span as a single report line.
func FormatSpan(sp OpSpan) string { return trace.FormatSpan(sp) }
