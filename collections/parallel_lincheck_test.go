package collections

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/linearize"
)

// cmapOp drives the commutativity-declaring counter map below: adds carry a
// delta, reads return one key's accumulated value.
type cmapOp struct {
	add   bool
	key   int
	delta uint64
}

const cmapKeys = 3

// cmapDS is a counter map built for parallel combining: fixed atomic cells,
// and an add's response is its own delta — the same structure state and the
// same per-op responses in any execution order, which is exactly what
// ConcurrentApply asserts.
type cmapDS struct {
	cells [cmapKeys]atomic.Uint64
}

func (d *cmapDS) Execute(op cmapOp) uint64 {
	if op.add {
		d.cells[op.key].Add(op.delta)
		return op.delta
	}
	return d.cells[op.key].Load()
}

func (d *cmapDS) IsReadOnly(op cmapOp) bool { return !op.add }

func (d *cmapDS) ConcurrentApply(op cmapOp) bool { return op.add }

// cmapModel is the sequential specification: per-key accumulation. An add
// must answer its delta; a read must answer the key's current sum.
func cmapModel() linearize.Model[[cmapKeys]uint64] {
	return linearize.Model[[cmapKeys]uint64]{
		Init: func() [cmapKeys]uint64 { return [cmapKeys]uint64{} },
		Step: func(s [cmapKeys]uint64, input, output any) (bool, [cmapKeys]uint64) {
			in := input.(cmapOp)
			out := output.(uint64)
			if in.add {
				s[in.key] += in.delta
				return out == in.delta, s
			}
			return out == s[in.key], s
		},
		Hash: func(s [cmapKeys]uint64) uint64 {
			var h uint64
			for _, v := range s {
				h = linearize.HashUint64(h, v)
			}
			return h
		},
	}
}

// TestParallelCombiningLinearizable records concurrent histories through an
// instance whose batches are executed by parked client goroutines (parallel
// combining) and verifies them against the sequential counter-map model:
// handing a commuting batch back to its posters must not cost
// linearizability, and the parallel path must actually run at least once
// across the rounds.
func TestParallelCombiningLinearizable(t *testing.T) {
	var parallelOps uint64
	for round := 0; round < 30; round++ {
		inst, err := nr.New(func() nr.Sequential[cmapOp, uint64] { return &cmapDS{} },
			nr.WithNodes(2, 2, 1), nr.WithLogEntries(128),
			nr.WithBatchPolicy(nr.BatchPolicy{MaxLinger: 500 * time.Microsecond, Parallel: true}))
		if err != nil {
			t.Fatal(err)
		}
		const threads, per = 4, 20
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			h, err := inst.Register()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(g int, h *nr.Handle[cmapOp, uint64]) {
				defer wg.Done()
				cl := rec.Client(g)
				rng := uint64(round*37+g)*2654435761 + 1
				for i := 0; i < per; i++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					op := cmapOp{key: int(rng % cmapKeys)}
					if rng%4 != 0 { // update-heavy: parallel batches need adds
						op.add = true
						op.delta = rng%100 + 1
					}
					call := cl.Invoke()
					out := h.Execute(op)
					cl.Complete(call, op, out)
				}
			}(g, h)
		}
		wg.Wait()
		if !linearize.Check(cmapModel(), rec.History()) {
			t.Fatalf("round %d: parallel-combining history not linearizable", round)
		}
		parallelOps += inst.Stats().ParallelOps
	}
	if parallelOps == 0 {
		t.Error("parallel combining never engaged across rounds; ParallelOps = 0")
	}
}
