package collections

import (
	"fmt"
	"sync"
	"testing"

	nr "github.com/asplos17/nr"
)

func smallCfg() nr.Option {
	return nr.WithConfig(nr.Config{Nodes: 2, CoresPerNode: 3, LogEntries: 512})
}

func TestMapBasic(t *testing.T) {
	m, err := NewMap[string, int](smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Get("x"); ok {
		t.Error("Get on empty = ok")
	}
	if !h.Put("x", 1) {
		t.Error("fresh Put = false")
	}
	if h.Put("x", 2) {
		t.Error("overwriting Put = true")
	}
	if v, ok := h.Get("x"); !ok || v != 2 {
		t.Errorf("Get = %d,%v", v, ok)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
	if !h.Delete("x") {
		t.Error("Delete existing = false")
	}
	if h.Delete("x") {
		t.Error("Delete absent = true")
	}
	if m.Stats().UpdateOps == 0 {
		t.Error("stats not wired")
	}
}

func TestMapConcurrentDisjoint(t *testing.T) {
	m, err := NewMap[int, int](smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	const threads, per = 4, 800
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		h, err := m.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *MapHandle[int, int]) {
			defer wg.Done()
			base := g * per
			for i := 0; i < per; i++ {
				k := base + i
				if !h.Put(k, k*2) {
					t.Errorf("Put(%d) reported existing", k)
					return
				}
				if v, ok := h.Get(k); !ok || v != k*2 {
					t.Errorf("Get(%d) = %d,%v", k, v, ok)
					return
				}
			}
		}(g, h)
	}
	wg.Wait()
	h, _ := m.Register()
	if got := h.Len(); got != threads*per {
		t.Errorf("Len = %d, want %d", got, threads*per)
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	q, err := NewPriorityQueue[string](smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.PopMin(); err != ErrEmpty {
		t.Errorf("PopMin on empty = %v, want ErrEmpty", err)
	}
	h.Push("low", 3)
	h.Push("urgent", 1)
	h.Push("mid", 2)
	h.Push("urgent-2", 1) // FIFO within equal priority
	if item, prio, err := h.PeekMin(); err != nil || item != "urgent" || prio != 1 {
		t.Errorf("PeekMin = %q,%d,%v", item, prio, err)
	}
	want := []string{"urgent", "urgent-2", "mid", "low"}
	for _, w := range want {
		item, _, err := h.PopMin()
		if err != nil || item != w {
			t.Fatalf("PopMin = %q,%v want %q", item, err, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestPriorityQueueConcurrentConservation(t *testing.T) {
	q, err := NewPriorityQueue[int64](smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	const threads, per = 4, 600
	var wg sync.WaitGroup
	popped := make([][]int64, threads)
	for g := 0; g < threads; g++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *PriorityQueueHandle[int64]) {
			defer wg.Done()
			base := int64(g * per)
			for i := 0; i < per; i++ {
				v := base + int64(i)
				h.Push(v, v)
				if item, _, err := h.PopMin(); err == nil {
					popped[g] = append(popped[g], item)
				}
			}
		}(g, h)
	}
	wg.Wait()
	seen := map[int64]int{}
	for _, ps := range popped {
		for _, v := range ps {
			seen[v]++
		}
	}
	h, _ := q.Register()
	for {
		v, _, err := h.PopMin()
		if err != nil {
			break
		}
		seen[v]++
	}
	if len(seen) != threads*per {
		t.Fatalf("saw %d distinct items, want %d", len(seen), threads*per)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d popped %d times", v, n)
		}
	}
}

func TestSortedSetBasic(t *testing.T) {
	z, err := NewSortedSet(0, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	h, err := z.Register()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Add("alice", 10) {
		t.Error("fresh Add = false")
	}
	h.Add("bob", 5)
	if sc := h.IncrBy("bob", 20); sc != 25 {
		t.Errorf("IncrBy = %v", sc)
	}
	if r, ok := h.Rank("alice"); !ok || r != 0 {
		t.Errorf("Rank(alice) = %d,%v, want 0 (bob is now 25)", r, ok)
	}
	if sc, ok := h.Score("bob"); !ok || sc != 25 {
		t.Errorf("Score(bob) = %v,%v", sc, ok)
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
	if !h.Remove("bob") {
		t.Error("Remove = false")
	}
	if _, ok := h.Rank("bob"); ok {
		t.Error("Rank after Remove = ok")
	}
}

func TestSortedSetConcurrentLeaderboard(t *testing.T) {
	z, err := NewSortedSet(7, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	const threads, per = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		h, err := z.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *SortedSetHandle) {
			defer wg.Done()
			member := fmt.Sprintf("p%d", g)
			for i := 0; i < per; i++ {
				h.IncrBy(member, 1)
				if _, ok := h.Rank(member); !ok {
					t.Errorf("member %s lost", member)
					return
				}
			}
		}(g, h)
	}
	wg.Wait()
	h, _ := z.Register()
	for g := 0; g < threads; g++ {
		if sc, ok := h.Score(fmt.Sprintf("p%d", g)); !ok || sc != per {
			t.Errorf("p%d score = %v,%v, want %d", g, sc, ok, per)
		}
	}
}
