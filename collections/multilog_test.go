package collections

import (
	"sync"
	"sync/atomic"
	"testing"

	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/linearize"
)

// TestMapWithLogsLinearizable is TestMapLinearizable over the multi-log
// map: the WHOLE history — not per class — must stay linearizable, because
// per-key classes touch disjoint sub-maps (locality composes them) and Len
// serializes through the cross-log barrier.
func TestMapWithLogsLinearizable(t *testing.T) {
	for round := 0; round < 25; round++ {
		m, err := NewMapWithLogs[int64, uint64](4, nr.WithNodes(2, 2, 1), nr.WithLogEntries(128))
		if err != nil {
			t.Fatal(err)
		}
		const threads, per = 4, 8
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			h, err := m.Register()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(g int, h *MapHandle[int64, uint64]) {
				defer wg.Done()
				cl := rec.Client(g)
				rng := uint64(round*53+g)*2654435761 + 1
				for i := 0; i < per; i++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					key := int64(rng % 4)
					switch rng % 3 {
					case 0:
						call := cl.Invoke()
						ok := h.Put(key, rng)
						cl.Complete(call, linearize.DictIn{Kind: 'i', Key: key, Val: rng},
							linearize.DictOut{Val: rng, OK: ok})
					case 1:
						call := cl.Invoke()
						ok := h.Delete(key)
						cl.Complete(call, linearize.DictIn{Kind: 'd', Key: key},
							linearize.DictOut{OK: ok})
					default:
						call := cl.Invoke()
						v, ok := h.Get(key)
						cl.Complete(call, linearize.DictIn{Kind: 'l', Key: key},
							linearize.DictOut{Val: v, OK: ok})
					}
				}
			}(g, h)
		}
		wg.Wait()
		if !linearize.Check(linearize.DictModel(), rec.History()) {
			t.Fatalf("round %d: multi-log Map history not linearizable", round)
		}
		m.Close()
	}
}

// TestMapWithLogsLenBounds pins the linearizable-Len claim that sets the
// multi-log map apart from ShardedMap: every Len lands between the inserts
// completed before it started and those started before it returned.
func TestMapWithLogsLenBounds(t *testing.T) {
	m, err := NewMapWithLogs[int64, uint64](4, nr.WithNodes(2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const writers, perW, lenOps = 4, 150, 80
	var started, completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		h, err := m.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *MapHandle[int64, uint64]) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				started.Add(1)
				h.Put(int64(g)*1_000_000+int64(i), 1)
				completed.Add(1)
			}
		}(g, h)
	}
	for g := 0; g < 2; g++ {
		h, err := m.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *MapHandle[int64, uint64]) {
			defer wg.Done()
			for i := 0; i < lenOps; i++ {
				lo := completed.Load()
				n := int64(h.Len())
				hi := started.Load()
				if n < lo || n > hi {
					t.Errorf("Len = %d outside [%d, %d]", n, lo, hi)
				}
			}
		}(h)
	}
	wg.Wait()
	h, err := m.Register()
	if err != nil {
		t.Fatal(err)
	}
	if n := h.Len(); n != writers*perW {
		t.Fatalf("final Len = %d, want %d", n, writers*perW)
	}
}

// TestMapWithLogsSingle pins the degenerate configuration: one log (and
// even logs <= 0) behaves exactly like NewMap.
func TestMapWithLogsSingle(t *testing.T) {
	for _, logs := range []int{0, 1} {
		m, err := NewMapWithLogs[string, int](logs, nr.WithNodes(1, 2, 1))
		if err != nil {
			t.Fatalf("logs=%d: %v", logs, err)
		}
		h, err := m.Register()
		if err != nil {
			t.Fatal(err)
		}
		if !h.Put("a", 1) || !h.Put("b", 2) {
			t.Fatal("fresh keys reported as existing")
		}
		if v, ok := h.Get("a"); !ok || v != 1 {
			t.Fatalf("Get(a) = %d,%v", v, ok)
		}
		if h.Len() != 2 {
			t.Fatalf("Len = %d, want 2", h.Len())
		}
		m.Close()
	}
}
