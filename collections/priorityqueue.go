package collections

import (
	"errors"

	nr "github.com/asplos17/nr"
)

// pqOpKind enumerates priority-queue operations.
type pqOpKind uint8

const (
	pqPush pqOpKind = iota
	pqPopMin
	pqPeekMin
	pqLen
)

type pqOp[T any] struct {
	kind pqOpKind
	item T
	prio int64
}

type pqResp[T any] struct {
	item T
	prio int64
	n    int
	ok   bool
}

// seqPQ is a sequential binary min-heap keyed by an int64 priority.
type seqPQ[T any] struct {
	items []pqEntry[T]
	next  uint64 // monotone insertion counter; deterministic across replicas
}

type pqEntry[T any] struct {
	item T
	prio int64
	seq  uint64 // insertion order breaks priority ties FIFO
}

func (q *seqPQ[T]) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (q *seqPQ[T]) Execute(op pqOp[T]) pqResp[T] {
	switch op.kind {
	case pqPush:
		q.next++
		q.items = append(q.items, pqEntry[T]{item: op.item, prio: op.prio, seq: q.next})
		for i := len(q.items) - 1; i > 0; {
			parent := (i - 1) / 2
			if !q.less(i, parent) {
				break
			}
			q.items[i], q.items[parent] = q.items[parent], q.items[i]
			i = parent
		}
		return pqResp[T]{ok: true}
	case pqPopMin:
		if len(q.items) == 0 {
			return pqResp[T]{}
		}
		top := q.items[0]
		last := len(q.items) - 1
		q.items[0] = q.items[last]
		q.items = q.items[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < last && q.less(l, smallest) {
				smallest = l
			}
			if r < last && q.less(r, smallest) {
				smallest = r
			}
			if smallest == i {
				break
			}
			q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
			i = smallest
		}
		return pqResp[T]{item: top.item, prio: top.prio, ok: true}
	case pqPeekMin:
		if len(q.items) == 0 {
			return pqResp[T]{}
		}
		return pqResp[T]{item: q.items[0].item, prio: q.items[0].prio, ok: true}
	case pqLen:
		return pqResp[T]{n: len(q.items), ok: true}
	}
	return pqResp[T]{}
}

func (q *seqPQ[T]) IsReadOnly(op pqOp[T]) bool {
	return op.kind == pqPeekMin || op.kind == pqLen
}

// PriorityQueue is a linearizable, NUMA-aware min-priority queue: items pop
// in ascending priority order, FIFO within equal priorities.
type PriorityQueue[T any] struct {
	exec nr.Executor[pqOp[T], pqResp[T]]
}

// NewPriorityQueue builds a priority queue replicated per the given nr
// options (default topology with none).
func NewPriorityQueue[T any](opts ...nr.Option) (*PriorityQueue[T], error) {
	inst, err := nr.New(func() nr.Sequential[pqOp[T], pqResp[T]] {
		return &seqPQ[T]{}
	}, opts...)
	if err != nil {
		return nil, err
	}
	return &PriorityQueue[T]{exec: inst}, nil
}

// PriorityQueueHandle executes operations for one goroutine.
type PriorityQueueHandle[T any] struct {
	h nr.OpExecutor[pqOp[T], pqResp[T]]
}

// Register binds the calling goroutine to the queue.
func (q *PriorityQueue[T]) Register() (*PriorityQueueHandle[T], error) {
	h, err := q.exec.RegisterExecutor()
	if err != nil {
		return nil, err
	}
	return &PriorityQueueHandle[T]{h: h}, nil
}

// ErrEmpty reports a pop or peek on an empty queue.
var ErrEmpty = errors.New("collections: empty")

// Push adds item with the given priority (smaller pops first).
func (h *PriorityQueueHandle[T]) Push(item T, priority int64) {
	h.h.Execute(pqOp[T]{kind: pqPush, item: item, prio: priority})
}

// PopMin removes and returns the lowest-priority item.
func (h *PriorityQueueHandle[T]) PopMin() (T, int64, error) {
	r := h.h.Execute(pqOp[T]{kind: pqPopMin})
	if !r.ok {
		var zero T
		return zero, 0, ErrEmpty
	}
	return r.item, r.prio, nil
}

// PeekMin returns the lowest-priority item without removing it.
func (h *PriorityQueueHandle[T]) PeekMin() (T, int64, error) {
	r := h.h.Execute(pqOp[T]{kind: pqPeekMin})
	if !r.ok {
		var zero T
		return zero, 0, ErrEmpty
	}
	return r.item, r.prio, nil
}

// Len returns the number of queued items.
func (h *PriorityQueueHandle[T]) Len() int {
	return h.h.Execute(pqOp[T]{kind: pqLen}).n
}
