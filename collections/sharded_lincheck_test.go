package collections

import (
	"sync"
	"testing"

	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/linearize"
)

// TestShardedMapLinearizable records short concurrent histories through the
// ShardedMap facade and verifies them against the dictionary model. This is
// the per-key-linearizability claim of DESIGN.md §11 made executable: every
// operation here touches a single key, and linearizability is local
// (Herlihy & Wing) — a history over multiple objects is linearizable iff
// each object's subhistory is — so hash-partitioned keys behaving like
// independent linearizable objects makes the whole history check out
// against the sequential dictionary model, even though no cross-shard order
// exists. A router bug that let one key's operations straddle shards would
// surface here as a non-linearizable history.
func TestShardedMapLinearizable(t *testing.T) {
	for round := 0; round < 40; round++ {
		m, err := NewShardedMap[int64, uint64](3, nr.WithNodes(2, 2, 1), nr.WithLogEntries(128))
		if err != nil {
			t.Fatal(err)
		}
		const threads, per = 4, 8
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			h, err := m.Register()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(g int, h *ShardedMapHandle[int64, uint64]) {
				defer wg.Done()
				cl := rec.Client(g)
				rng := uint64(round*37+g)*2654435761 + 1
				for i := 0; i < per; i++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					// 4 keys over 3 shards: at least two keys share a shard
					// and at least two shards are populated, so both the
					// same-shard and cross-shard interleavings get exercised.
					key := int64(rng % 4)
					switch rng % 3 {
					case 0:
						call := cl.Invoke()
						ok := h.Put(key, rng)
						cl.Complete(call, linearize.DictIn{Kind: 'i', Key: key, Val: rng},
							linearize.DictOut{Val: rng, OK: ok})
					case 1:
						call := cl.Invoke()
						ok := h.Delete(key)
						cl.Complete(call, linearize.DictIn{Kind: 'd', Key: key},
							linearize.DictOut{OK: ok})
					case 2:
						call := cl.Invoke()
						v, ok := h.Get(key)
						cl.Complete(call, linearize.DictIn{Kind: 'l', Key: key},
							linearize.DictOut{Val: v, OK: ok})
					}
				}
			}(g, h)
		}
		wg.Wait()
		if !linearize.Check(linearize.DictModel(), rec.History()) {
			t.Fatalf("round %d: ShardedMap history not linearizable", round)
		}
		m.Close()
	}
}
