package collections

import (
	nr "github.com/asplos17/nr"
)

// ShardedMap is Map over nr.NewSharded: the key space is hash-partitioned
// across independent NR instances, so updates to different shards never
// contend on a shared log. Per-key operations (Get/Put/Delete) keep Map's
// full linearizability — every operation on a key lands on the shard that
// owns it. Len is a cross-shard fan-out with per-shard-linearizable
// semantics: it sums counts taken at each shard's own linearization point,
// so concurrent updates may or may not be included, though the result is
// always a size the map could have had.
//
// ShardedMap embeds Map: all per-key operations and instance-wide
// observability flow through the same Executor-typed code path as the plain
// map; only the sharded extras (Shards, ShardMetrics, the Len fan-out) live
// here.
type ShardedMap[K comparable, V any] struct {
	Map[K, V]
	inst *nr.ShardedInstance[mapOp[K, V], mapResp[V]]
}

// NewShardedMap builds a map hash-partitioned over the given number of
// shards, each shard replicated per the nr options. The router is
// nr.KeyRouter over the operation's key.
func NewShardedMap[K comparable, V any](shards int, opts ...nr.Option) (*ShardedMap[K, V], error) {
	inst, err := nr.NewSharded(func() nr.Sequential[mapOp[K, V], mapResp[V]] {
		return &seqMap[K, V]{m: make(map[K]V)}
	}, shards, nr.KeyRouter(shards, func(op mapOp[K, V]) K { return op.key }), opts...)
	if err != nil {
		return nil, err
	}
	return &ShardedMap[K, V]{Map: Map[K, V]{exec: inst}, inst: inst}, nil
}

// ShardedMapHandle executes map operations for one goroutine: MapHandle's
// per-key operations verbatim, plus the cross-shard Len fan-out.
type ShardedMapHandle[K comparable, V any] struct {
	MapHandle[K, V]
	all *nr.ShardedHandle[mapOp[K, V], mapResp[V]]
}

// Register binds the calling goroutine to the map (one handle slot on every
// shard, all on the same node).
func (m *ShardedMap[K, V]) Register() (*ShardedMapHandle[K, V], error) {
	h, err := m.inst.Register()
	if err != nil {
		return nil, err
	}
	return &ShardedMapHandle[K, V]{MapHandle: MapHandle[K, V]{h: h}, all: h}, nil
}

// Shards returns the shard count.
func (m *ShardedMap[K, V]) Shards() int { return m.inst.Shards() }

// ShardMetrics exposes the full sharded snapshot: the aggregate plus
// per-shard breakdowns. The embedded Map's Metrics returns the aggregate
// alone.
func (m *ShardedMap[K, V]) ShardMetrics() nr.ShardedMetrics { return m.inst.ShardMetrics() }

// Len sums the shard sizes — a cross-shard fan-out, per-shard linearizable
// only (see ShardedMap). It shadows MapHandle.Len, which would route the
// keyless length op to an arbitrary single shard.
func (h *ShardedMapHandle[K, V]) Len() int {
	total := 0
	for _, r := range h.all.ExecuteAll(mapOp[K, V]{kind: mapLen}) {
		total += r.n
	}
	return total
}
