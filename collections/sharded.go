package collections

import (
	nr "github.com/asplos17/nr"
)

// ShardedMap is Map over nr.NewSharded: the key space is hash-partitioned
// across independent NR instances, so updates to different shards never
// contend on a shared log. Per-key operations (Get/Put/Delete) keep Map's
// full linearizability — every operation on a key lands on the shard that
// owns it. Len is a cross-shard fan-out with per-shard-linearizable
// semantics: it sums counts taken at each shard's own linearization point,
// so concurrent updates may or may not be included, though the result is
// always a size the map could have had.
type ShardedMap[K comparable, V any] struct {
	inst *nr.ShardedInstance[mapOp[K, V], mapResp[V]]
}

// NewShardedMap builds a map hash-partitioned over the given number of
// shards, each shard replicated per the nr options. The router is
// nr.KeyRouter over the operation's key.
func NewShardedMap[K comparable, V any](shards int, opts ...nr.Option) (*ShardedMap[K, V], error) {
	inst, err := nr.NewSharded(func() nr.Sequential[mapOp[K, V], mapResp[V]] {
		return &seqMap[K, V]{m: make(map[K]V)}
	}, shards, nr.KeyRouter(shards, func(op mapOp[K, V]) K { return op.key }), opts...)
	if err != nil {
		return nil, err
	}
	return &ShardedMap[K, V]{inst: inst}, nil
}

// ShardedMapHandle executes map operations for one goroutine.
type ShardedMapHandle[K comparable, V any] struct {
	h *nr.ShardedHandle[mapOp[K, V], mapResp[V]]
}

// Register binds the calling goroutine to the map (one handle slot on every
// shard, all on the same node).
func (m *ShardedMap[K, V]) Register() (*ShardedMapHandle[K, V], error) {
	h, err := m.inst.Register()
	if err != nil {
		return nil, err
	}
	return &ShardedMapHandle[K, V]{h: h}, nil
}

// Shards returns the shard count.
func (m *ShardedMap[K, V]) Shards() int { return m.inst.Shards() }

// Stats exposes the aggregate NR counters (per-shard counters summed).
func (m *ShardedMap[K, V]) Stats() nr.Stats { return m.inst.Stats() }

// Metrics exposes the aggregated snapshot with per-shard breakdowns.
func (m *ShardedMap[K, V]) Metrics() nr.ShardedMetrics { return m.inst.Metrics() }

// Close stops every shard's background goroutines.
func (m *ShardedMap[K, V]) Close() { m.inst.Close() }

// Get returns the value stored under key.
func (h *ShardedMapHandle[K, V]) Get(key K) (V, bool) {
	r := h.h.Execute(mapOp[K, V]{kind: mapGet, key: key})
	return r.val, r.ok
}

// Put stores val under key, reporting whether the key was newly inserted.
func (h *ShardedMapHandle[K, V]) Put(key K, val V) bool {
	return h.h.Execute(mapOp[K, V]{kind: mapPut, key: key, val: val}).ok
}

// Delete removes key, reporting whether it was present.
func (h *ShardedMapHandle[K, V]) Delete(key K) bool {
	return h.h.Execute(mapOp[K, V]{kind: mapDelete, key: key}).ok
}

// Len sums the shard sizes — a cross-shard fan-out, per-shard linearizable
// only (see ShardedMap).
func (h *ShardedMapHandle[K, V]) Len() int {
	total := 0
	for _, r := range h.h.ExecuteAll(mapOp[K, V]{kind: mapLen}) {
		total += r.n
	}
	return total
}
