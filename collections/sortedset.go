package collections

import (
	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/ds"
)

// SortedSet is a linearizable, NUMA-aware sorted set in the Redis style:
// string members ranked by float64 score (ties break lexicographically).
// It wraps the repository's coupled hash-map + skip-list structure — the
// §6 "coupled data structures" case — through NR.
type SortedSet struct {
	exec nr.Executor[ds.ZOp, ds.ZResult]
}

// NewSortedSet builds a sorted set replicated per the given nr options.
// Seed fixes skip-list level choices so replicas stay identical; any
// constant works (0 picks a default).
func NewSortedSet(seed uint64, opts ...nr.Option) (*SortedSet, error) {
	if seed == 0 {
		seed = 0xabcdef
	}
	inst, err := nr.New(func() nr.Sequential[ds.ZOp, ds.ZResult] {
		return ds.NewSeqSortedSet(64, seed)
	}, opts...)
	if err != nil {
		return nil, err
	}
	return &SortedSet{exec: inst}, nil
}

// SortedSetHandle executes operations for one goroutine.
type SortedSetHandle struct {
	h nr.OpExecutor[ds.ZOp, ds.ZResult]
}

// Register binds the calling goroutine to the set.
func (z *SortedSet) Register() (*SortedSetHandle, error) {
	h, err := z.exec.RegisterExecutor()
	if err != nil {
		return nil, err
	}
	return &SortedSetHandle{h: h}, nil
}

// Add sets member's score, reporting whether the member was newly added.
func (h *SortedSetHandle) Add(member string, score float64) bool {
	return h.h.Execute(ds.ZOp{Kind: ds.ZAdd, Member: member, Score: score}).OK
}

// IncrBy adds delta to member's score (creating it at delta) and returns
// the new score.
func (h *SortedSetHandle) IncrBy(member string, delta float64) float64 {
	return h.h.Execute(ds.ZOp{Kind: ds.ZIncrBy, Member: member, Score: delta}).Score
}

// Remove deletes member, reporting whether it was present.
func (h *SortedSetHandle) Remove(member string) bool {
	return h.h.Execute(ds.ZOp{Kind: ds.ZRem, Member: member}).OK
}

// Score returns member's score.
func (h *SortedSetHandle) Score(member string) (float64, bool) {
	r := h.h.Execute(ds.ZOp{Kind: ds.ZScore, Member: member})
	return r.Score, r.OK
}

// Rank returns member's 0-based ascending rank.
func (h *SortedSetHandle) Rank(member string) (int, bool) {
	r := h.h.Execute(ds.ZOp{Kind: ds.ZRank, Member: member})
	return r.Rank, r.OK
}

// Len returns the number of members.
func (h *SortedSetHandle) Len() int {
	return int(h.h.Execute(ds.ZOp{Kind: ds.ZCard}).Rank)
}
