package collections

import (
	"hash/maphash"

	nr "github.com/asplos17/nr"
)

// seqPartMap is the sequential structure behind NewMapWithLogs: the key
// space is hash-split into one sub-map per conflict class. Multi-log NR
// may apply different classes' batches to the SAME replica concurrently
// (each log has its own per-replica combiner and writer lock), so the
// structure must tolerate that — disjoint sub-maps do, a single Go map
// would race. The seed is shared by every replica and by the log mapper,
// so all of them agree on which class owns a key.
type seqPartMap[K comparable, V any] struct {
	seed  maphash.Seed
	parts []map[K]V
}

func (s *seqPartMap[K, V]) part(key K) map[K]V {
	return s.parts[maphash.Comparable(s.seed, key)%uint64(len(s.parts))]
}

func (s *seqPartMap[K, V]) Execute(op mapOp[K, V]) mapResp[V] {
	switch op.kind {
	case mapGet:
		v, ok := s.part(op.key)[op.key]
		return mapResp[V]{val: v, ok: ok}
	case mapPut:
		p := s.part(op.key)
		_, existed := p[op.key]
		p[op.key] = op.val
		return mapResp[V]{ok: !existed}
	case mapDelete:
		p := s.part(op.key)
		_, ok := p[op.key]
		delete(p, op.key)
		return mapResp[V]{ok: ok}
	case mapLen:
		n := 0
		for _, p := range s.parts {
			n += len(p)
		}
		return mapResp[V]{n: n, ok: true}
	}
	return mapResp[V]{}
}

func (s *seqPartMap[K, V]) IsReadOnly(op mapOp[K, V]) bool {
	return op.kind == mapGet || op.kind == mapLen
}

// NewMapWithLogs builds a Map whose single NR instance runs `logs`
// commutativity-partitioned logs (nr.WithLogs): per-key operations are
// hashed to a conflict class and only contend with that class, while Len
// spans every class and serializes through the cross-log barrier — unlike
// ShardedMap's Len, it stays fully linearizable. Compared with
// NewShardedMap this keeps ONE set of replicas (one structure per node,
// single memory footprint) and one registration per goroutine; sharding
// multiplies whole instances. The extra opts are passed through to nr.New
// and must not include another WithLogs.
func NewMapWithLogs[K comparable, V any](logs int, opts ...nr.Option) (*Map[K, V], error) {
	seed := maphash.MakeSeed()
	n := uint64(logs)
	if logs < 1 {
		n = 1 // match core's Logs <= 0 → single-log default
	}
	mapper := nr.LogMapperFunc[mapOp[K, V]](func(op mapOp[K, V]) int {
		if op.kind == mapLen {
			return nr.CrossLog
		}
		return int(maphash.Comparable(seed, op.key) % n)
	})
	all := append(append([]nr.Option(nil), opts...), nr.WithLogs[mapOp[K, V]](logs, mapper))
	inst, err := nr.New(func() nr.Sequential[mapOp[K, V], mapResp[V]] {
		s := &seqPartMap[K, V]{seed: seed, parts: make([]map[K]V, n)}
		for i := range s.parts {
			s.parts[i] = make(map[K]V)
		}
		return s
	}, all...)
	if err != nil {
		return nil, err
	}
	return &Map[K, V]{exec: inst}, nil
}
