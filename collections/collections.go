// Package collections provides ready-made concurrent containers built on
// Node Replication: a hash map, a priority queue, and a sorted set with
// ordinary typed APIs. Each is the corresponding sequential structure from
// this repository passed through nr.New — exactly what a user would write
// by hand with the black-box API, packaged.
//
// Usage follows the NR model: construct the container, then Register once
// per goroutine to get a handle; handles are not safe for concurrent use,
// instances are.
//
//	m, _ := collections.NewMap[string, int]()
//	h, _ := m.Register()
//	h.Put("k", 1)
//	v, ok := h.Get("k")
package collections

import (
	nr "github.com/asplos17/nr"
)

// mapOpKind enumerates map operations.
type mapOpKind uint8

const (
	mapGet mapOpKind = iota
	mapPut
	mapDelete
	mapLen
)

type mapOp[K comparable, V any] struct {
	kind mapOpKind
	key  K
	val  V
}

type mapResp[V any] struct {
	val V
	n   int
	ok  bool
}

// seqMap is the sequential structure replicated by NR.
type seqMap[K comparable, V any] struct {
	m map[K]V
}

func (s *seqMap[K, V]) Execute(op mapOp[K, V]) mapResp[V] {
	switch op.kind {
	case mapGet:
		v, ok := s.m[op.key]
		return mapResp[V]{val: v, ok: ok}
	case mapPut:
		_, existed := s.m[op.key]
		s.m[op.key] = op.val
		return mapResp[V]{ok: !existed}
	case mapDelete:
		_, ok := s.m[op.key]
		delete(s.m, op.key)
		return mapResp[V]{ok: ok}
	case mapLen:
		return mapResp[V]{n: len(s.m), ok: true}
	}
	return mapResp[V]{}
}

func (s *seqMap[K, V]) IsReadOnly(op mapOp[K, V]) bool {
	return op.kind == mapGet || op.kind == mapLen
}

// Map is a linearizable, NUMA-aware hash map. It drives whatever
// nr.Executor it is given — a plain instance under NewMap, a
// hash-partitioned one under NewShardedMap — through the same typed API.
type Map[K comparable, V any] struct {
	exec nr.Executor[mapOp[K, V], mapResp[V]]
}

// NewMap builds a map replicated per the given nr options (default topology
// with none).
func NewMap[K comparable, V any](opts ...nr.Option) (*Map[K, V], error) {
	inst, err := nr.New(func() nr.Sequential[mapOp[K, V], mapResp[V]] {
		return &seqMap[K, V]{m: make(map[K]V)}
	}, opts...)
	if err != nil {
		return nil, err
	}
	return &Map[K, V]{exec: inst}, nil
}

// MapHandle executes map operations for one goroutine.
type MapHandle[K comparable, V any] struct {
	h nr.OpExecutor[mapOp[K, V], mapResp[V]]
}

// Register binds the calling goroutine to the map.
func (m *Map[K, V]) Register() (*MapHandle[K, V], error) {
	h, err := m.exec.RegisterExecutor()
	if err != nil {
		return nil, err
	}
	return &MapHandle[K, V]{h: h}, nil
}

// Stats exposes the underlying NR counters.
func (m *Map[K, V]) Stats() nr.Stats { return m.exec.Stats() }

// Metrics exposes the unified observability snapshot (aggregate when
// sharded).
func (m *Map[K, V]) Metrics() nr.Metrics { return m.exec.Metrics() }

// Close stops the underlying instance's background goroutines.
func (m *Map[K, V]) Close() { m.exec.Close() }

// Get returns the value stored under key.
func (h *MapHandle[K, V]) Get(key K) (V, bool) {
	r := h.h.Execute(mapOp[K, V]{kind: mapGet, key: key})
	return r.val, r.ok
}

// Put stores val under key, reporting whether the key was newly inserted.
func (h *MapHandle[K, V]) Put(key K, val V) bool {
	return h.h.Execute(mapOp[K, V]{kind: mapPut, key: key, val: val}).ok
}

// Delete removes key, reporting whether it was present.
func (h *MapHandle[K, V]) Delete(key K) bool {
	return h.h.Execute(mapOp[K, V]{kind: mapDelete, key: key}).ok
}

// Len returns the number of entries.
func (h *MapHandle[K, V]) Len() int {
	return h.h.Execute(mapOp[K, V]{kind: mapLen}).n
}
