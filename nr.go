// Package nr is Node Replication: a black-box transformation that turns any
// sequential data structure into a linearizable, NUMA-aware concurrent one,
// after "Black-box Concurrent Data Structures for NUMA Architectures"
// (Calciu, Sen, Balakrishnan, Aguilera — ASPLOS 2017).
//
// Provide a sequential implementation satisfying Sequential — Execute must
// be deterministic, non-blocking, and side-effect-free outside the
// structure; IsReadOnly must be a pure function of the operation — and nr
// replicates it across the NUMA nodes of a (software) topology, routing
// updates through a NUMA-aware shared log with per-node flat combining and
// serving reads from the local replica:
//
//	inst, err := nr.New(func() nr.Sequential[Op, Resp] { return newThing() })
//	h, err := inst.Register()      // bind this goroutine to a node
//	resp := h.Execute(op)          // linearizable, concurrent
//
// New takes functional options. With none it simulates the paper's testbed:
// 4 NUMA nodes × 14 cores × 2 hyperthreads. Go cannot pin OS threads to
// NUMA nodes, so the topology is a software construct: it decides which
// replica, combining slot, and reader lock each registered goroutine uses,
// exactly as hardware placement does in the paper's C++ implementation.
//
//	inst, err := nr.New(create,
//	    nr.WithNodes(2, 4, 1),        // 2 nodes × 4 cores, no SMT
//	    nr.WithLogEntries(1<<20),     // the paper's 1M-entry log
//	    nr.WithMetrics(),             // built-in latency/batch metrics
//	)
//	m := inst.Metrics()               // unified observability snapshot
package nr

import (
	"errors"
	"time"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/obs"
	"github.com/asplos17/nr/internal/topology"
	"github.com/asplos17/nr/internal/trace"
)

// Sequential is the black-box contract (§4 of the paper): Create is the
// constructor you pass to New, Execute applies an operation, IsReadOnly
// classifies it.
type Sequential[O, R any] interface {
	Execute(op O) R       //nr:opaque black-box boundary (user structure)
	IsReadOnly(op O) bool //nr:opaque
}

// Config tunes an instance as a flat struct. The zero value is the paper's
// Intel testbed with a 64K-entry log.
//
// Config predates the functional options and remains fully supported via
// WithConfig; options cover everything Config does and more (observers,
// metrics), so new code should prefer them.
type Config struct {
	// Nodes, CoresPerNode, SMT describe the software NUMA topology.
	// All three default as a group to 4×14×2 when Nodes is zero.
	Nodes        int
	CoresPerNode int
	SMT          int
	// LogEntries sizes the shared circular log (default 64K).
	LogEntries int
	// MinBatch makes combiners wait for at least this many operations
	// before appending, refreshing the replica meanwhile (default 1 = off).
	//
	// Deprecated: MinBatch alone cannot say how long to wait; it is kept as
	// a shim that lowers onto Batch (a MinBatch target with a fixed 100µs
	// linger window). Set Batch instead.
	MinBatch int
	// Batch is the combiner batching policy: how long a combiner lingers
	// for concurrent operations to share a round, whether the window adapts
	// to observed arrival rates, and whether commutative batches are handed
	// back to the posting goroutines for parallel execution. The zero value
	// disables lingering. See BatchPolicy.
	Batch BatchPolicy
	// DedicatedCombiners starts one background goroutine per node that
	// keeps that node's replica fresh even when its threads are idle (the
	// paper's §4 optional optimization and its §6 inactive-replica fix).
	// Call Close when done with the instance.
	DedicatedCombiners bool
	// StallThreshold, when positive, starts a watchdog that flags combiners
	// holding their lock longer than this — a stalled or preempted thread,
	// the failure mode §6 of the paper singles out — and surfaces them via
	// Stats and Health while the helping path keeps the log draining. Call
	// Close when done with the instance.
	StallThreshold time.Duration
}

// Option configures New. Options are applied in order; later options win.
type Option func(*settings)

// settings accumulates option state before it is lowered to core.Options.
type settings struct {
	cfg           Config
	logs          int
	mapper        any // func(O) int, type-checked by core.New
	observers     []obs.Observer
	metrics       bool
	trace         *trace.Recorder
	persist       *persistConfig
	persistTuning []PersistOption
	telemetry     *telemetryConfig
}

// CrossLog is the LogMapper sentinel for operations that touch more than one
// conflict class. Such operations serialize through log 0 behind a ticket
// barrier appended to every other log, so all replicas apply them at the
// same point relative to every class's history (DESIGN.md §16).
const CrossLog = core.CrossLog

// LogMapper assigns every operation a conflict class for a multi-log
// instance (WithLogs): a log index in [0, m), or CrossLog for operations
// spanning classes. The contract, on which linearizability rests:
//
//   - LogIndex must be a pure function of the operation (every replica must
//     agree on each op's class).
//   - Operations mapped to different classes must commute: executing them in
//     either order yields the same structure state and the same responses.
//   - The sequential structure must tolerate operations of different classes
//     being applied to one replica in different interleavings than another
//     replica saw (which commutativity makes semantically invisible).
//
// CheckMapperCommutes probes a mapper against its structure; the multi-log
// fuzz tests in this repo show the pattern. Partitioned structures (one
// sub-structure per class, class = hash(key) mod m) satisfy the contract by
// construction.
type LogMapper[O any] interface {
	LogIndex(op O) int
}

// LogMapperFunc adapts a plain function to the LogMapper interface.
type LogMapperFunc[O any] func(O) int

// LogIndex implements LogMapper.
func (f LogMapperFunc[O]) LogIndex(op O) int { return f(op) }

// WithLogs partitions the instance across m shared logs (multi-log NR,
// DESIGN.md §16): mapper assigns every operation a conflict class, each
// class gets its own log with independent per-node combining and replay,
// and a reader waits only on the log its class maps to — update throughput
// inside one linearizable instance scales with the number of classes that
// are actually contended. m = 1 (mapper ignored, may be nil) is exactly the
// classic single-log instance.
//
// WithLogs is a generic function, so it cannot be inferred from New's
// create argument; instantiate it with the operation type:
//
//	inst, err := nr.New(create, nr.WithLogs[Op](4, nr.LogMapperFunc[Op](classOf)))
//
// Multi-log instances reject the single-log ablation knobs and persistence
// (per-log WALs need a cross-log recovery barrier, ROADMAP item 5), and
// require a non-nil mapper. Misrouted classes outside [0, m) are folded
// into range rather than trusted.
func WithLogs[O any](m int, mapper LogMapper[O]) Option {
	return func(s *settings) {
		s.logs = m
		if mapper == nil {
			s.mapper = nil
			return
		}
		s.mapper = func(op O) int { return mapper.LogIndex(op) }
	}
}

// WithConfig applies an entire Config struct, exactly as the pre-options
// New(create, cfg) did. It composes with the other options: placed first it
// acts as a base that later options override.
func WithConfig(cfg Config) Option {
	return func(s *settings) { s.cfg = cfg }
}

// WithNodes sets the software NUMA topology: nodes × coresPerNode × smt
// hardware threads. Zero coresPerNode or smt default to 1.
func WithNodes(nodes, coresPerNode, smt int) Option {
	return func(s *settings) {
		s.cfg.Nodes = nodes
		s.cfg.CoresPerNode = coresPerNode
		s.cfg.SMT = smt
	}
}

// WithLogEntries sizes the shared circular log (default 64K entries).
func WithLogEntries(n int) Option {
	return func(s *settings) { s.cfg.LogEntries = n }
}

// BatchPolicy tunes combiner batching (DESIGN.md §13): a combiner that
// acquires its node's combining lock may linger up to MaxLinger for
// concurrent threads to publish their operations, closing the round early
// once MinBatch operations are in hand; with Adaptive set the effective
// window is learned from observed batch sizes instead of fixed; with
// Parallel set, batches whose operations all commute (see
// ConcurrentApplier) are handed back to the posting goroutines to execute
// against the replica concurrently. The zero policy disables lingering —
// every round takes only what is already posted.
type BatchPolicy = core.BatchPolicy

// BatchNone is the zero batching policy: no lingering, no parallel
// combining — each combining round takes only the operations already
// posted, minimizing latency at the cost of one-op rounds under load.
func BatchNone() BatchPolicy { return BatchPolicy{} }

// BatchAdaptive is the recommended batching policy: the combiner's linger
// window opens and closes with observed arrival rates (up to a default
// 200µs ceiling), so lone threads pay nothing while saturated nodes form
// full batches. Adjust the ceiling by setting MaxLinger on the returned
// policy.
func BatchAdaptive() BatchPolicy { return BatchPolicy{Adaptive: true} }

// WithBatchPolicy sets the combiner batching policy; see BatchPolicy,
// BatchNone, BatchAdaptive.
func WithBatchPolicy(p BatchPolicy) Option {
	return func(s *settings) { s.cfg.Batch = p }
}

// ConcurrentApplier is the opt-in commutativity contract for parallel
// combining (BatchPolicy.Parallel): a replicated structure additionally
// implementing it declares, per operation, whether that operation may be
// applied concurrently with the other update operations of its batch.
// ConcurrentApply must be a pure function of the operation, and returning
// true asserts two things about op against any batch of declared-true
// operations: executing them in any order yields the same structure state
// AND the same per-operation responses (remote replicas replay the batch
// serially in log order), and Execute is thread-safe for these operations
// (they may run concurrently against the same replica). Counters and
// disjoint-key accumulators qualify; last-writer-wins maps do not.
type ConcurrentApplier[O any] interface {
	ConcurrentApply(op O) bool
}

// WithMinBatch makes combiners wait for at least n posted operations
// before appending a batch, refreshing the replica meanwhile (§5.2).
//
// Deprecated: WithMinBatch names a batch size but not a wait bound; it is
// retained as a shim equivalent to WithBatchPolicy(BatchPolicy{MinBatch: n,
// MaxLinger: 100 * time.Microsecond}). Use WithBatchPolicy.
func WithMinBatch(n int) Option {
	return func(s *settings) { s.cfg.MinBatch = n }
}

// WithDedicatedCombiners starts one background goroutine per node that
// keeps that node's replica fresh even when its threads are idle (§4, §6).
// Instances built with it must be Closed; after Close, Register returns a
// sticky ErrClosed (a fresh handle's node might never drain again).
func WithDedicatedCombiners() Option {
	return func(s *settings) { s.cfg.DedicatedCombiners = true }
}

// WithStallThreshold starts a watchdog that flags combiners holding their
// lock longer than d (§6's stalled-thread hazard), surfacing them via
// Metrics/Health while the helping path keeps the log draining. Instances
// built with it must be Closed.
func WithStallThreshold(d time.Duration) Option {
	return func(s *settings) { s.cfg.StallThreshold = d }
}

// WithObserver attaches an event observer to the instance: it receives
// combine-round, reader-refresh, helping, log-contention, stall, panic, and
// per-operation-latency events from inside the protocol. The observer must
// be concurrency-safe and non-blocking; events carry only scalars, so a
// hook never allocates. Repeated WithObserver (and WithMetrics) compose:
// every observer receives every event.
func WithObserver(o Observer) Option {
	return func(s *settings) {
		if o != nil {
			s.observers = append(s.observers, o)
		}
	}
}

// WithMetrics attaches the built-in metrics observer: per-node latency
// histograms split by operation class, combiner batch-size distributions,
// and counters for every protocol event, all folded into the snapshot
// Instance.Metrics returns (its Observed field is non-nil exactly when the
// instance was built with WithMetrics).
func WithMetrics() Option {
	return func(s *settings) { s.metrics = true }
}

// Stats mirrors core.Stats: counters describing internal behaviour. It is
// the Stats slice of the Metrics snapshot.
type Stats = core.Stats

// Health mirrors core.Health: a point-in-time failure-state report. It is
// the Health slice of the Metrics snapshot.
type Health = core.Health

// Metrics is the unified observability snapshot: Stats counters, Health
// failure state, live log/replica gauges, and — with WithMetrics — the
// event-derived latency histograms and batch-size distributions.
type Metrics = core.Metrics

// Observer receives protocol events; see WithObserver. Embed NopObserver
// to implement only the events you care about.
type Observer = obs.Observer

// NopObserver ignores every event; embed it in partial observers.
type NopObserver = obs.Nop

// OpClass classifies a completed operation (read vs update) in OpDone
// events and latency metrics.
type OpClass = obs.OpClass

// Operation classes reported to Observer.OpDone.
const (
	OpRead   = obs.OpRead
	OpUpdate = obs.OpUpdate
)

// ObservedMetrics is the event-derived part of a Metrics snapshot
// (Metrics.Observed), present when the instance was built WithMetrics.
type ObservedMetrics = obs.Snapshot

// PanicError is the error TryExecute returns when the operation's
// Sequential.Execute panicked; Execute re-raises it as a panic on the
// submitting goroutine. Value holds the original panic value.
type PanicError = core.PanicError

// ErrPoisoned is reported (via errors.Is) once replicas have been observed
// to diverge — Execute panicked on some replicas but not others, violating
// the §4 determinism contract. The state is sticky; see DESIGN.md's
// "Failure model".
var ErrPoisoned = core.ErrPoisoned

// ErrResponseLost is reported when a response delivery invariant broke (a
// thread died mid-protocol); the affected handle is retired.
var ErrResponseLost = core.ErrResponseLost

// ErrClosed is reported (via errors.Is) by Register and RegisterOnNode
// after Close on an instance built with dedicated combiners; see
// WithDedicatedCombiners.
var ErrClosed = core.ErrClosed

// Instance is a replicated, linearizable version of a sequential structure.
type Instance[O, R any] struct {
	inner *core.Instance[O, R]
	pst   *persistence[O] // nil unless built with WithPersistence/Recover
	tel   *Telemetry      // nil unless built with WithTelemetry/WithSLO
}

// Handle executes operations on behalf of one registered goroutine. It is
// not safe for concurrent use; register one handle per goroutine.
type Handle[O, R any] struct {
	inner *core.Handle[O, R]
}

// lower converts the accumulated settings into one core.Options value. It
// is called once per core instance built — S times for a sharded instance —
// so every call hands out a fresh obs.Metrics observer (per-shard latency
// histograms must not share buckets) while the user-supplied observers and
// the flight recorder are shared across calls by design.
func (s *settings) lower() core.Options {
	cfg := s.cfg
	opts := core.Options{
		LogEntries:         cfg.LogEntries,
		Logs:               s.logs,
		LogMapper:          s.mapper,
		MinBatch:           cfg.MinBatch,
		Batch:              cfg.Batch,
		DedicatedCombiners: cfg.DedicatedCombiners,
		StallThreshold:     cfg.StallThreshold,
	}
	nodes := 4 // the default Intel testbed
	if cfg.Nodes != 0 {
		smt := cfg.SMT
		if smt == 0 {
			smt = 1
		}
		cores := cfg.CoresPerNode
		if cores == 0 {
			cores = 1
		}
		opts.Topology = topology.New(cfg.Nodes, cores, smt)
		nodes = cfg.Nodes
	}
	// Full slice expression: a second lower() call must not overwrite the
	// obs.Metrics a previous call appended into shared backing storage.
	observers := s.observers[:len(s.observers):len(s.observers)]
	if s.metrics {
		observers = append(observers, obs.NewMetrics(nodes))
	}
	opts.Observer = obs.Combine(observers...)
	opts.Trace = s.trace
	return opts
}

// New builds an instance. create is invoked once per NUMA node and must
// produce identical replicas (same seeds, same initial contents). With no
// options it simulates the paper's testbed (4×14×2, 64K-entry log).
func New[O, R any](create func() Sequential[O, R], options ...Option) (*Instance[O, R], error) {
	if create == nil {
		return nil, errors.New("nr: create function is nil")
	}
	var s settings
	for _, o := range options {
		o(&s)
	}
	if s.persist != nil && s.logs > 1 {
		// Fail before building anything: per-log WALs lack the cross-log
		// recovery generations recovery would need (ROADMAP item 5).
		return nil, errors.New("nr: WithLogs(m > 1) cannot be combined with persistence; per-log WALs lack a cross-log recovery barrier")
	}
	inner, err := core.New[O, R](func() core.Sequential[O, R] { return create() }, s.lower())
	if err != nil {
		return nil, err
	}
	inst := &Instance[O, R]{inner: inner}
	if s.persist != nil {
		pst, perr := attachPersistence(inst, s.persist)
		if perr != nil {
			inner.Close()
			return nil, perr
		}
		inst.pst = pst
	}
	if s.telemetry != nil {
		inst.tel = startTelemetry(inst, s.telemetry)
	}
	return inst, nil
}

// NewWithConfig builds an instance from a flat Config.
//
// Deprecated: use New(create, WithConfig(cfg)) — or better, the individual
// options — which additionally carry observers and metrics.
func NewWithConfig[O, R any](create func() Sequential[O, R], cfg Config) (*Instance[O, R], error) {
	return New(create, WithConfig(cfg))
}

// Register binds the calling goroutine to the next hardware-thread position
// (filling one node before spilling to the next, the paper's placement).
// It fails once every simulated hardware thread is taken, and with
// ErrClosed after Close on a dedicated-combiners instance.
func (i *Instance[O, R]) Register() (*Handle[O, R], error) {
	h, err := i.inner.Register()
	if err != nil {
		return nil, err
	}
	return &Handle[O, R]{inner: h}, nil
}

// RegisterOnNode binds the calling goroutine to an explicit NUMA node.
func (i *Instance[O, R]) RegisterOnNode(node int) (*Handle[O, R], error) {
	h, err := i.inner.RegisterOnNode(node)
	if err != nil {
		return nil, err
	}
	return &Handle[O, R]{inner: h}, nil
}

// Replicas returns the number of per-node replicas.
func (i *Instance[O, R]) Replicas() int { return i.inner.Replicas() }

// Logs returns the number of shared logs (conflict classes): 1 for a
// classic instance, WithLogs' m otherwise.
func (i *Instance[O, R]) Logs() int { return i.inner.Logs() }

// Metrics returns the unified observability snapshot: Stats counters,
// Health failure state, live gauges for log occupancy and per-replica
// completedTail lag, and — when built WithMetrics — latency histograms per
// operation class and combiner batch-size distributions (Observed field).
// Instances built with persistence additionally carry the WAL's durability
// gauges (Persist field), including the durable-index lag: how many
// completed operations a crash right now would lose.
func (i *Instance[O, R]) Metrics() Metrics {
	m := i.inner.Metrics()
	i.fillPersist(&m)
	return m
}

// MetricsInto fills m in place, reusing its Replicas capacity; observed
// skips or includes the Observed summary. The telemetry collector's cadence
// tick uses it to avoid allocating a snapshot per tick.
func (i *Instance[O, R]) MetricsInto(m *Metrics, observed bool) {
	i.inner.MetricsInto(m, observed)
	i.fillPersist(m)
}

// fillPersist folds the WAL's counters into the snapshot when the instance
// is durable. DurableLag is computed against the same snapshot's Completed
// gauge (both racy monotone reads, so the clamp absorbs any skew).
func (i *Instance[O, R]) fillPersist(m *Metrics) {
	if i.pst == nil {
		return
	}
	ws := i.pst.wal.Stats()
	durable := i.pst.wal.DurableIndex()
	var lag uint64
	if m.Log.Completed > durable {
		lag = m.Log.Completed - durable
	}
	m.Persist = &core.PersistGauges{
		Appends:      ws.Appends,
		Pages:        ws.Pages,
		Fsyncs:       ws.Fsyncs,
		FsyncNanos:   ws.FsyncNanos,
		Rotations:    ws.Rotations,
		SealStalls:   ws.SealStalls,
		DurableIndex: durable,
		DurableLag:   lag,
	}
}

// Stats returns internal counters (combining rounds, reads, helps, ...).
// It is the Stats slice of Metrics.
func (i *Instance[O, R]) Stats() Stats { return i.inner.Stats() }

// Health reports the instance's failure state: contained panics, currently
// stalled combiners (when a stall threshold is set), and whether the
// instance has been poisoned by a non-deterministic Execute panic. It is
// the Health slice of Metrics.
func (i *Instance[O, R]) Health() Health { return i.inner.Health() }

// MemoryBytes reports the shared log's footprint plus, for replicas whose
// sequential structure implements interface{ MemoryBytes() uint64 }, the
// replicas' footprints — the space cost the paper tabulates.
func (i *Instance[O, R]) MemoryBytes() uint64 { return i.inner.MemoryBytes() }

// Quiesce brings every replica up to date with all completed operations —
// useful before inspecting replicas, never required for correctness.
func (i *Instance[O, R]) Quiesce() { i.inner.Quiesce() }

// Close stops the dedicated combiners, if configured, and — on a
// persistent instance — flushes and closes the write-ahead log (call
// SyncWAL first when the sticky WAL error matters; Close discards it).
// Existing handles remain usable afterwards for in-memory operation; on a
// dedicated-combiners instance new registration is refused with ErrClosed.
// Close is idempotent and a no-op otherwise.
func (i *Instance[O, R]) Close() {
	if i.tel != nil {
		i.tel.Close()
	}
	i.inner.Close()
	if i.pst != nil {
		_ = i.pst.wal.Close()
	}
}

// FakeUpdater is the optional fast path of §6: structures whose update
// operations frequently turn out to be no-ops (removing an absent key) can
// implement TryReadOnly; NR first attempts such updates on the cheap local
// read path and only falls back to the shared log when a real update is
// needed. TryReadOnly must not modify the structure.
type FakeUpdater[O, R any] interface {
	TryReadOnly(op O) (resp R, done bool) //nr:opaque black-box boundary
}

// Inspect quiesces node's replica and runs fn on its sequential structure
// with the write lock held. fn must not retain the structure.
func (i *Instance[O, R]) Inspect(node int, fn func(s Sequential[O, R])) {
	i.inner.InspectReplica(node, func(ds core.Sequential[O, R]) { fn(ds) })
}

// Execute runs op with linearizable semantics. If the operation's
// Sequential.Execute panics — on whichever goroutine ran it — the panic is
// re-raised here wrapped in a *PanicError; the NR machinery itself survives.
// Use TryExecute to receive contained failures as errors instead.
func (h *Handle[O, R]) Execute(op O) R { return h.inner.Execute(op) }

// TryExecute runs op with linearizable semantics, reporting contained
// failures as errors: a *PanicError when user Execute panicked, ErrPoisoned
// once replicas have diverged, ErrResponseLost when a delivery invariant
// broke. A nil error means resp is the operation's result.
func (h *Handle[O, R]) TryExecute(op O) (R, error) { return h.inner.TryExecute(op) }

// Node returns the node this handle is bound to.
func (h *Handle[O, R]) Node() int { return h.inner.Node() }

// PostAndAbandon submits an update without waiting for its response: the
// op is published to this handle's combining slot and applied by whichever
// combiner picks it up, while the caller moves on immediately. The
// response is discarded. Capture LastToken right after the call to make
// the abandoned op detectable after a crash.
func (h *Handle[O, R]) PostAndAbandon(op O) { h.inner.PostAndAbandon(op) }

// LastToken identifies the most recent operation submitted through this
// handle: the flight-recorder token (log index | node | combining slot |
// per-slot sequence number) that also travels with the op into the
// write-ahead log on persistent instances. Capture it after Execute/TryExecute/
// PostAndAbandon returns and, after a crash, ask
// Recovered.WasExecuted(token) whether that operation survived.
func (h *Handle[O, R]) LastToken() uint64 { return h.inner.LastToken() }
