// Package nr is Node Replication: a black-box transformation that turns any
// sequential data structure into a linearizable, NUMA-aware concurrent one,
// after "Black-box Concurrent Data Structures for NUMA Architectures"
// (Calciu, Sen, Balakrishnan, Aguilera — ASPLOS 2017).
//
// Provide a sequential implementation satisfying Sequential — Execute must
// be deterministic, non-blocking, and side-effect-free outside the
// structure; IsReadOnly must be a pure function of the operation — and nr
// replicates it across the NUMA nodes of a (software) topology, routing
// updates through a NUMA-aware shared log with per-node flat combining and
// serving reads from the local replica:
//
//	inst, err := nr.New(func() nr.Sequential[Op, Resp] { return newThing() }, nr.Config{})
//	h, err := inst.Register()      // bind this goroutine to a node
//	resp := h.Execute(op)          // linearizable, concurrent
//
// The zero Config simulates the paper's testbed: 4 NUMA nodes × 14 cores ×
// 2 hyperthreads. Go cannot pin OS threads to NUMA nodes, so the topology
// is a software construct: it decides which replica, combining slot, and
// reader lock each registered goroutine uses, exactly as hardware placement
// does in the paper's C++ implementation.
package nr

import (
	"errors"
	"time"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/topology"
)

// Sequential is the black-box contract (§4 of the paper): Create is the
// constructor you pass to New, Execute applies an operation, IsReadOnly
// classifies it.
type Sequential[O, R any] interface {
	Execute(op O) R
	IsReadOnly(op O) bool
}

// Config tunes an instance. The zero value is the paper's Intel testbed
// with a 64K-entry log.
type Config struct {
	// Nodes, CoresPerNode, SMT describe the software NUMA topology.
	// All three default as a group to 4×14×2 when Nodes is zero.
	Nodes        int
	CoresPerNode int
	SMT          int
	// LogEntries sizes the shared circular log (default 64K).
	LogEntries int
	// MinBatch makes combiners wait for at least this many operations
	// before appending, refreshing the replica meanwhile (default 1 = off).
	MinBatch int
	// DedicatedCombiners starts one background goroutine per node that
	// keeps that node's replica fresh even when its threads are idle (the
	// paper's §4 optional optimization and its §6 inactive-replica fix).
	// Call Close when done with the instance.
	DedicatedCombiners bool
	// StallThreshold, when positive, starts a watchdog that flags combiners
	// holding their lock longer than this — a stalled or preempted thread,
	// the failure mode §6 of the paper singles out — and surfaces them via
	// Stats and Health while the helping path keeps the log draining. Call
	// Close when done with the instance.
	StallThreshold time.Duration
}

// Stats mirrors core.Stats: counters describing internal behaviour.
type Stats = core.Stats

// Health mirrors core.Health: a point-in-time failure-state report.
type Health = core.Health

// PanicError is the error TryExecute returns when the operation's
// Sequential.Execute panicked; Execute re-raises it as a panic on the
// submitting goroutine. Value holds the original panic value.
type PanicError = core.PanicError

// ErrPoisoned is reported (via errors.Is) once replicas have been observed
// to diverge — Execute panicked on some replicas but not others, violating
// the §4 determinism contract. The state is sticky; see DESIGN.md's
// "Failure model".
var ErrPoisoned = core.ErrPoisoned

// ErrResponseLost is reported when a response delivery invariant broke (a
// thread died mid-protocol); the affected handle is retired.
var ErrResponseLost = core.ErrResponseLost

// Instance is a replicated, linearizable version of a sequential structure.
type Instance[O, R any] struct {
	inner *core.Instance[O, R]
}

// Handle executes operations on behalf of one registered goroutine. It is
// not safe for concurrent use; register one handle per goroutine.
type Handle[O, R any] struct {
	inner *core.Handle[O, R]
}

// New builds an instance. create is invoked once per NUMA node and must
// produce identical replicas (same seeds, same initial contents).
func New[O, R any](create func() Sequential[O, R], cfg Config) (*Instance[O, R], error) {
	if create == nil {
		return nil, errors.New("nr: create function is nil")
	}
	opts := core.Options{
		LogEntries:         cfg.LogEntries,
		MinBatch:           cfg.MinBatch,
		DedicatedCombiners: cfg.DedicatedCombiners,
		StallThreshold:     cfg.StallThreshold,
	}
	if cfg.Nodes != 0 {
		smt := cfg.SMT
		if smt == 0 {
			smt = 1
		}
		cores := cfg.CoresPerNode
		if cores == 0 {
			cores = 1
		}
		opts.Topology = topology.New(cfg.Nodes, cores, smt)
	}
	inner, err := core.New[O, R](func() core.Sequential[O, R] { return create() }, opts)
	if err != nil {
		return nil, err
	}
	return &Instance[O, R]{inner: inner}, nil
}

// Register binds the calling goroutine to the next hardware-thread position
// (filling one node before spilling to the next, the paper's placement).
// It fails once every simulated hardware thread is taken.
func (i *Instance[O, R]) Register() (*Handle[O, R], error) {
	h, err := i.inner.Register()
	if err != nil {
		return nil, err
	}
	return &Handle[O, R]{inner: h}, nil
}

// RegisterOnNode binds the calling goroutine to an explicit NUMA node.
func (i *Instance[O, R]) RegisterOnNode(node int) (*Handle[O, R], error) {
	h, err := i.inner.RegisterOnNode(node)
	if err != nil {
		return nil, err
	}
	return &Handle[O, R]{inner: h}, nil
}

// Replicas returns the number of per-node replicas.
func (i *Instance[O, R]) Replicas() int { return i.inner.Replicas() }

// Stats returns internal counters (combining rounds, reads, helps, ...).
func (i *Instance[O, R]) Stats() Stats { return i.inner.Stats() }

// Health reports the instance's failure state: contained panics, currently
// stalled combiners (when StallThreshold is set), and whether the instance
// has been poisoned by a non-deterministic Execute panic.
func (i *Instance[O, R]) Health() Health { return i.inner.Health() }

// MemoryBytes reports the shared log's footprint plus, for replicas whose
// sequential structure implements interface{ MemoryBytes() uint64 }, the
// replicas' footprints — the space cost the paper tabulates.
func (i *Instance[O, R]) MemoryBytes() uint64 { return i.inner.MemoryBytes() }

// Quiesce brings every replica up to date with all completed operations —
// useful before inspecting replicas, never required for correctness.
func (i *Instance[O, R]) Quiesce() { i.inner.Quiesce() }

// Close stops the dedicated combiners, if configured. The instance remains
// usable afterwards; Close is idempotent and a no-op otherwise.
func (i *Instance[O, R]) Close() { i.inner.Close() }

// FakeUpdater is the optional fast path of §6: structures whose update
// operations frequently turn out to be no-ops (removing an absent key) can
// implement TryReadOnly; NR first attempts such updates on the cheap local
// read path and only falls back to the shared log when a real update is
// needed. TryReadOnly must not modify the structure.
type FakeUpdater[O, R any] interface {
	TryReadOnly(op O) (resp R, done bool)
}

// Inspect quiesces node's replica and runs fn on its sequential structure
// with the write lock held. fn must not retain the structure.
func (i *Instance[O, R]) Inspect(node int, fn func(s Sequential[O, R])) {
	i.inner.InspectReplica(node, func(ds core.Sequential[O, R]) { fn(ds) })
}

// Execute runs op with linearizable semantics. If the operation's
// Sequential.Execute panics — on whichever goroutine ran it — the panic is
// re-raised here wrapped in a *PanicError; the NR machinery itself survives.
// Use TryExecute to receive contained failures as errors instead.
func (h *Handle[O, R]) Execute(op O) R { return h.inner.Execute(op) }

// TryExecute runs op with linearizable semantics, reporting contained
// failures as errors: a *PanicError when user Execute panicked, ErrPoisoned
// once replicas have diverged, ErrResponseLost when a delivery invariant
// broke. A nil error means resp is the operation's result.
func (h *Handle[O, R]) TryExecute(op O) (R, error) { return h.inner.TryExecute(op) }

// Node returns the node this handle is bound to.
func (h *Handle[O, R]) Node() int { return h.inner.Node() }
