package nr_test

import (
	"strconv"
	"sync"
	"testing"

	nr "github.com/asplos17/nr"
)

// TestShardedQuickstart exercises the public sharded surface the way a
// downstream user would: KeyRouter over the op's key, concurrent writers,
// per-key reads routed to the owning shard.
func TestShardedQuickstart(t *testing.T) {
	inst, err := nr.NewSharded(newSeqMap, 4,
		nr.KeyRouter(4, func(op mapOp) string { return op.key }),
		nr.WithNodes(2, 3, 1), nr.WithLogEntries(256))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Shards() != 4 {
		t.Errorf("Shards = %d, want 4", inst.Shards())
	}
	if inst.Replicas() != 2 {
		t.Errorf("Replicas = %d, want 2", inst.Replicas())
	}

	const threads, perThread = 4, 300
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			h, err := inst.Register()
			if err != nil {
				t.Errorf("Register: %v", err)
				return
			}
			for i := 0; i < perThread; i++ {
				key := "k" + strconv.Itoa(i%32)
				h.Execute(mapOp{key: key, val: tid*perThread + i})
				if got := h.Execute(mapOp{get: true, key: key}); !got.ok {
					t.Errorf("read back %q: missing", key)
					return
				}
			}
		}(tid)
	}
	wg.Wait()

	h, err := inst.RegisterOnNode(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		key := "k" + strconv.Itoa(i)
		if got := h.Execute(mapOp{get: true, key: key}); !got.ok {
			t.Errorf("final read %q: missing", key)
		}
		// The router is a pure function: the shard must not change between
		// calls, and Execute must agree with ShardOf.
		if a, b := h.ShardOf(mapOp{key: key}), h.ShardOf(mapOp{get: true, key: key}); a != b {
			t.Errorf("router unstable for %q: %d vs %d", key, a, b)
		}
	}
}

// TestShardedExecuteAll checks the documented fan-out semantics: one
// response per shard, in shard order.
func TestShardedExecuteAll(t *testing.T) {
	inst, err := nr.NewSharded(newSeqMap, 3,
		nr.KeyRouter(3, func(op mapOp) string { return op.key }),
		nr.WithNodes(1, 2, 1), nr.WithLogEntries(128))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(mapOp{key: "solo", val: 7})
	owner := h.ShardOf(mapOp{key: "solo"})

	resps := h.ExecuteAll(mapOp{get: true, key: "solo"})
	if len(resps) != 3 {
		t.Fatalf("ExecuteAll returned %d responses, want 3", len(resps))
	}
	for i, r := range resps {
		if r.ok != (i == owner) {
			t.Errorf("shard %d: ok=%v, want %v (owner %d)", i, r.ok, i == owner, owner)
		}
	}
	if _, err := h.TryExecuteAll(mapOp{key: "solo", val: 8}); err != nil {
		t.Errorf("TryExecuteAll on healthy shards: %v", err)
	}
}

// TestShardedMetricsAndTrace checks that WithMetrics gives every shard its
// own observer folded into one aggregate, and that a shared flight recorder
// yields a single snapshot covering ops routed to different shards.
func TestShardedMetricsAndTrace(t *testing.T) {
	inst, err := nr.NewSharded(newSeqMap, 2,
		nr.KeyRouter(2, func(op mapOp) string { return op.key }),
		nr.WithNodes(1, 2, 1), nr.WithLogEntries(128),
		nr.WithMetrics(), nr.WithFlightRecorder(nr.TraceConfig{RingSlots: 256}))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	const ops = 64
	var reads int
	for i := 0; i < ops; i++ {
		key := "k" + strconv.Itoa(i%16)
		if i%2 == 0 {
			h.Execute(mapOp{key: key, val: i})
		} else {
			h.Execute(mapOp{get: true, key: key})
			reads++
		}
	}

	m := inst.ShardMetrics()
	if len(m.Shards) != 2 {
		t.Fatalf("ShardMetrics.Shards has %d entries, want 2", len(m.Shards))
	}
	if agg := inst.Metrics(); agg.Stats != m.Aggregate.Stats {
		t.Errorf("Metrics() aggregate stats %+v != ShardMetrics().Aggregate.Stats %+v", agg.Stats, m.Aggregate.Stats)
	}
	s := m.Aggregate.Stats
	if got := s.ReadOps + s.UpdateOps; got != ops {
		t.Errorf("aggregate ReadOps+UpdateOps = %d, want %d", got, ops)
	}
	if s.ReadOps != uint64(reads) {
		t.Errorf("aggregate ReadOps = %d, want %d", s.ReadOps, reads)
	}
	// Per-shard observers are distinct: each shard observed only its own
	// routed traffic, and the observations sum to the whole.
	var obsOps uint64
	for i, ms := range m.Shards {
		if ms.Observed == nil {
			t.Fatalf("shard %d: Observed is nil, want per-shard metrics", i)
		}
		obsOps += ms.Observed.Read.Count + ms.Observed.Update.Count
	}
	if obsOps != ops {
		t.Errorf("per-shard observed ops sum = %d, want %d", obsOps, ops)
	}
	if h := inst.Health(); h.Poisoned {
		t.Errorf("aggregate Health poisoned: %+v", h)
	}

	snap := inst.TraceSnapshot()
	if len(snap.Rings) == 0 {
		t.Fatal("TraceSnapshot has no rings; recorder not shared across shards?")
	}
	spans := nr.ReconstructSpans(snap)
	if len(spans) == 0 {
		t.Fatal("no spans reconstructed from sharded trace")
	}
	if inst.FlightRecorder() == nil {
		t.Error("FlightRecorder() = nil with WithFlightRecorder set")
	}
}

// TestShardedValidation covers constructor error paths.
func TestShardedValidation(t *testing.T) {
	router := nr.KeyRouter(1, func(op mapOp) string { return op.key })
	if _, err := nr.NewSharded[mapOp, mapResp](nil, 1, router); err == nil {
		t.Error("nil create accepted")
	}
	if _, err := nr.NewSharded(newSeqMap, 1, nil); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := nr.NewSharded(newSeqMap, 0, router); err == nil {
		t.Error("zero shards accepted")
	}
}
