package nr_test

import (
	"encoding/binary"
	"fmt"
	"sort"
	"testing"
	"time"

	nr "github.com/asplos17/nr"
)

// kvOp is the test operation: add Delta to Key, or read Key.
type kvOp struct {
	Key   uint64
	Delta uint64
	Read  bool
}

// kvDS is a snapshot-capable accumulator map.
type kvDS struct {
	m map[uint64]uint64
}

func newKV() nr.Sequential[kvOp, uint64] { return &kvDS{m: make(map[uint64]uint64)} }

func (d *kvDS) Execute(op kvOp) uint64 {
	if op.Read {
		return d.m[op.Key]
	}
	d.m[op.Key] += op.Delta
	return d.m[op.Key]
}

func (d *kvDS) IsReadOnly(op kvOp) bool { return op.Read }

func (d *kvDS) SnapshotBytes() ([]byte, error) {
	keys := make([]uint64, 0, len(d.m))
	for k := range d.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := binary.LittleEndian.AppendUint64(nil, uint64(len(keys)))
	for _, k := range keys {
		out = binary.LittleEndian.AppendUint64(out, k)
		out = binary.LittleEndian.AppendUint64(out, d.m[k])
	}
	return out, nil
}

func restoreKV(data []byte) (nr.Sequential[kvOp, uint64], error) {
	d := &kvDS{m: make(map[uint64]uint64)}
	if data == nil {
		return d, nil
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("kv snapshot too short: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) != n*16 {
		return nil, fmt.Errorf("kv snapshot length mismatch: %d entries, %d bytes", n, len(data))
	}
	for i := uint64(0); i < n; i++ {
		k := binary.LittleEndian.Uint64(data[i*16:])
		v := binary.LittleEndian.Uint64(data[i*16+8:])
		d.m[k] = v
	}
	return d, nil
}

// kvCodec is a hand-rolled fixed-width codec for kvOp updates (reads are
// never persisted).
type kvCodec struct{}

func (kvCodec) AppendEncode(dst []byte, op kvOp) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint64(dst, op.Key)
	dst = binary.LittleEndian.AppendUint64(dst, op.Delta)
	return dst, nil
}

func (kvCodec) Decode(data []byte) (kvOp, error) {
	if len(data) != 16 {
		return kvOp{}, fmt.Errorf("kv record is %d bytes, want 16", len(data))
	}
	return kvOp{
		Key:   binary.LittleEndian.Uint64(data),
		Delta: binary.LittleEndian.Uint64(data[8:]),
	}, nil
}

func smallPersistent(t *testing.T, dir string, popts ...nr.PersistOption) *nr.Instance[kvOp, uint64] {
	t.Helper()
	popts = append([]nr.PersistOption{nr.WithGroupInterval(time.Millisecond)}, popts...)
	inst, err := nr.New(newKV,
		nr.WithNodes(2, 2, 1),
		nr.WithPersistence(dir, kvCodec{}, popts...),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return inst
}

func readKey(t *testing.T, h *nr.Handle[kvOp, uint64], key uint64) uint64 {
	t.Helper()
	return h.Execute(kvOp{Key: key, Read: true})
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inst := smallPersistent(t, dir)
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	tokens := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		h.Execute(kvOp{Key: i % 7, Delta: i})
		tokens = append(tokens, h.LastToken())
	}
	if err := inst.SyncWAL(); err != nil {
		t.Fatalf("SyncWAL: %v", err)
	}
	if d, ok := inst.DurableIndex(); !ok || d < n {
		t.Fatalf("DurableIndex = %d, %v; want >= %d", d, ok, n)
	}
	want := make(map[uint64]uint64)
	for i := uint64(0); i < n; i++ {
		want[i%7] += i
	}
	inst.Close()

	rec, err := nr.Recover(dir, restoreKV, kvCodec{}, nr.WithNodes(2, 2, 1))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Close()
	if rec.ReplayedOps() != n {
		t.Errorf("ReplayedOps = %d, want %d", rec.ReplayedOps(), n)
	}
	if rec.DroppedRecords() != 0 {
		t.Errorf("DroppedRecords = %d, want 0", rec.DroppedRecords())
	}
	h2, err := rec.Register()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got := readKey(t, h2, k); got != v {
			t.Errorf("key %d = %d after recovery, want %d", k, got, v)
		}
	}
	for _, tok := range tokens {
		if !rec.WasExecuted(tok) {
			t.Errorf("WasExecuted(%#x) = false for a synced op", tok)
		}
	}
	if rec.WasExecuted(0xffff_ffff_ffff_fff0) {
		t.Error("WasExecuted true for a token that never existed")
	}
}

func TestCheckpointThenReplaySuffix(t *testing.T) {
	dir := t.TempDir()
	inst := smallPersistent(t, dir)
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	const pre, post = 64, 16
	preTokens := make([]uint64, 0, pre)
	for i := uint64(0); i < pre; i++ {
		h.Execute(kvOp{Key: 1, Delta: 1})
		preTokens = append(preTokens, h.LastToken())
	}
	if err := inst.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if inst.LastSave().IsZero() {
		t.Error("LastSave still zero after Checkpoint")
	}
	for i := uint64(0); i < post; i++ {
		h.Execute(kvOp{Key: 2, Delta: 1})
	}
	if err := inst.SyncWAL(); err != nil {
		t.Fatalf("SyncWAL: %v", err)
	}
	inst.Close()

	rec, err := nr.Recover(dir, restoreKV, kvCodec{}, nr.WithNodes(2, 2, 1))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Close()
	if rec.SnapshotIndex() < pre {
		t.Errorf("SnapshotIndex = %d, want >= %d", rec.SnapshotIndex(), pre)
	}
	if rec.ReplayedOps() > post {
		t.Errorf("ReplayedOps = %d, want <= %d (snapshot should cover the prefix)", rec.ReplayedOps(), post)
	}
	h2, err := rec.Register()
	if err != nil {
		t.Fatal(err)
	}
	if got := readKey(t, h2, 1); got != pre {
		t.Errorf("key 1 = %d, want %d", got, pre)
	}
	if got := readKey(t, h2, 2); got != post {
		t.Errorf("key 2 = %d, want %d", got, post)
	}
	// Detectability must reach through the snapshot: pre-checkpoint ops are
	// not in the WAL suffix, only in the snapshot's token set.
	for _, tok := range preTokens {
		if !rec.WasExecuted(tok) {
			t.Errorf("WasExecuted(%#x) = false for a checkpointed op", tok)
		}
	}
}

func TestRecoverIsOpenOrCreate(t *testing.T) {
	dir := t.TempDir()
	rec, err := nr.Recover(dir, restoreKV, kvCodec{},
		nr.WithNodes(1, 2, 1),
		nr.WithPersistenceOptions(nr.WithGroupInterval(time.Millisecond)),
	)
	if err != nil {
		t.Fatalf("Recover on empty dir: %v", err)
	}
	if rec.ReplayedOps() != 0 || rec.SnapshotIndex() != 0 {
		t.Errorf("fresh dir: replayed %d from snapshot index %d, want 0/0",
			rec.ReplayedOps(), rec.SnapshotIndex())
	}
	h, err := rec.Register()
	if err != nil {
		t.Fatal(err)
	}
	h.Execute(kvOp{Key: 9, Delta: 41})
	h.Execute(kvOp{Key: 9, Delta: 1})
	tok := h.LastToken()
	if err := rec.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	rec.Close()

	rec2, err := nr.Recover(dir, restoreKV, kvCodec{}, nr.WithNodes(1, 2, 1))
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	defer rec2.Close()
	h2, err := rec2.Register()
	if err != nil {
		t.Fatal(err)
	}
	if got := readKey(t, h2, 9); got != 42 {
		t.Errorf("key 9 = %d, want 42", got)
	}
	if !rec2.WasExecuted(tok) {
		t.Error("token from first incarnation not executed after second recovery")
	}
}

func TestNewRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	inst := smallPersistent(t, dir)
	h, _ := inst.Register()
	h.Execute(kvOp{Key: 1, Delta: 1})
	if err := inst.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	inst.Close()

	_, err := nr.New(newKV, nr.WithNodes(2, 2, 1), nr.WithPersistence(dir, kvCodec{}))
	if err == nil {
		t.Fatal("New over existing durable state succeeded; want refusal directing to Recover")
	}
}

func TestPersistenceRequiresSnapshotter(t *testing.T) {
	_, err := nr.New(func() nr.Sequential[plainOp, int] { return plainDS{} },
		nr.WithNodes(1, 1, 1),
		nr.WithPersistence(t.TempDir(), nr.NewGobCodec[plainOp]()),
	)
	if err == nil {
		t.Fatal("New accepted a structure without SnapshotBytes")
	}
}

type plainOp struct{ V int }

type plainDS struct{}

func (plainDS) Execute(op plainOp) int     { return op.V }
func (plainDS) IsReadOnly(op plainOp) bool { return false }

func TestGobCodecWithPersistence(t *testing.T) {
	dir := t.TempDir()
	codec := nr.NewGobCodec[kvOp]()
	inst, err := nr.New(newKV,
		nr.WithNodes(1, 2, 1),
		nr.WithPersistence(dir, codec, nr.WithGroupInterval(time.Millisecond)),
	)
	if err != nil {
		t.Fatal(err)
	}
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		h.Execute(kvOp{Key: 3, Delta: 2})
	}
	if err := inst.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	inst.Close()

	rec, err := nr.Recover(dir, restoreKV, nr.NewGobCodec[kvOp](), nr.WithNodes(1, 2, 1))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Close()
	h2, err := rec.Register()
	if err != nil {
		t.Fatal(err)
	}
	if got := readKey(t, h2, 3); got != 100 {
		t.Errorf("key 3 = %d, want 100", got)
	}
}

func TestWALStatsAndSnapshotEvery(t *testing.T) {
	dir := t.TempDir()
	inst := smallPersistent(t, dir, nr.WithSnapshotEvery(40))
	h, err := inst.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 120; i++ {
		h.Execute(kvOp{Key: i, Delta: 1})
	}
	if err := inst.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	stats, ok := inst.WALStats()
	if !ok {
		t.Fatal("WALStats not ok on persistent instance")
	}
	if stats.Appends != 120 {
		t.Errorf("Appends = %d, want 120", stats.Appends)
	}
	if stats.Fsyncs == 0 {
		t.Error("Fsyncs = 0 after SyncWAL")
	}
	// The auto-checkpoint is asynchronous; wait briefly for one.
	deadline := time.Now().Add(2 * time.Second)
	for inst.LastSave().IsZero() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if inst.LastSave().IsZero() {
		t.Error("WithSnapshotEvery(40) never checkpointed after 120 ops")
	}
	inst.Close()
}

func TestNoPersistenceErrors(t *testing.T) {
	inst, err := nr.New(newKV, nr.WithNodes(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if err := inst.SyncWAL(); err != nr.ErrNoPersistence {
		t.Errorf("SyncWAL = %v, want ErrNoPersistence", err)
	}
	if err := inst.Checkpoint(); err != nr.ErrNoPersistence {
		t.Errorf("Checkpoint = %v, want ErrNoPersistence", err)
	}
	if _, ok := inst.DurableIndex(); ok {
		t.Error("DurableIndex ok on non-persistent instance")
	}
	if _, ok := inst.WALStats(); ok {
		t.Error("WALStats ok on non-persistent instance")
	}
	if !inst.LastSave().IsZero() {
		t.Error("LastSave non-zero on non-persistent instance")
	}
}
