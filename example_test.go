package nr_test

import (
	"fmt"

	nr "github.com/asplos17/nr"
)

// register is a tiny sequential structure: a single read/write cell.
type register struct{ v int }

type regOp struct {
	write bool
	val   int
}

func (r *register) Execute(op regOp) int {
	if op.write {
		r.v = op.val
	}
	return r.v
}
func (r *register) IsReadOnly(op regOp) bool { return !op.write }

// Example shows the three steps of using NR: wrap a sequential structure,
// register the goroutine, execute linearizable operations.
func Example() {
	inst, err := nr.New(func() nr.Sequential[regOp, int] { return &register{} })
	if err != nil {
		panic(err)
	}
	h, err := inst.Register()
	if err != nil {
		panic(err)
	}
	h.Execute(regOp{write: true, val: 42})
	fmt.Println(h.Execute(regOp{}))
	// Output: 42
}

// ExampleWithNodes shows a custom software topology: two NUMA nodes with
// four hardware threads each, and a smaller log.
func ExampleWithNodes() {
	inst, err := nr.New(func() nr.Sequential[regOp, int] { return &register{} },
		nr.WithNodes(2, 2, 2), nr.WithLogEntries(4096))
	if err != nil {
		panic(err)
	}
	fmt.Println(inst.Replicas(), "replicas")
	h, _ := inst.Register()
	fmt.Println("registered on node", h.Node())
	// Output:
	// 2 replicas
	// registered on node 0
}

// ExampleInstance_Inspect shows how to examine a quiesced replica.
func ExampleInstance_Inspect() {
	inst, _ := nr.New(func() nr.Sequential[regOp, int] { return &register{} },
		nr.WithNodes(2, 1, 1), nr.WithLogEntries(256))
	h, _ := inst.Register()
	h.Execute(regOp{write: true, val: 7})
	inst.Quiesce()
	inst.Inspect(1, func(s nr.Sequential[regOp, int]) {
		fmt.Println("replica 1 sees", s.(*register).v)
	})
	// Output: replica 1 sees 7
}
