package nr_test

import (
	"fmt"
	"sync"
	"testing"

	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/ds"
	"github.com/asplos17/nr/internal/linearize"
	"github.com/asplos17/nr/internal/miniredis"
	"github.com/asplos17/nr/internal/workload"
)

// TestIntegration_LinearizabilityThroughPublicAPI records real concurrent
// histories through the public nr API and verifies them with the checker —
// the repository's end-to-end validation of the paper's central claim.
func TestIntegration_LinearizabilityThroughPublicAPI(t *testing.T) {
	newCtr := func() nr.Sequential[cOp, uint64] { return &apiCounter{} }
	const rounds = 60
	for round := 0; round < rounds; round++ {
		inst, err := nr.New(newCtr, nr.WithNodes(2, 2, 1), nr.WithLogEntries(128))
		if err != nil {
			t.Fatal(err)
		}
		const threads, per = 4, 8
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			h, err := inst.Register()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(g int, h *nr.Handle[cOp, uint64]) {
				defer wg.Done()
				cl := rec.Client(g)
				rng := workload.NewRNG(uint64(round*100 + g + 1))
				for i := 0; i < per; i++ {
					inc := rng.Intn(2) == 0
					call := cl.Invoke()
					out := h.Execute(cOp{inc: inc})
					cl.Complete(call, linearize.RegisterIn{Inc: inc}, out)
				}
			}(g, h)
		}
		wg.Wait()
		if !linearize.Check(linearize.CounterModel(), rec.History()) {
			t.Fatalf("round %d: history not linearizable", round)
		}
	}
}

type cOp struct{ inc bool }

type apiCounter struct{ v uint64 }

func (c *apiCounter) Execute(op cOp) uint64 {
	if op.inc {
		c.v++
	}
	return c.v
}
func (c *apiCounter) IsReadOnly(op cOp) bool { return !op.inc }

// TestIntegration_EveryShippedStructureUnderNR runs each sequential
// structure the repository ships through the public API concurrently and
// checks replica agreement.
func TestIntegration_EveryShippedStructureUnderNR(t *testing.T) {
	cfg := nr.WithConfig(nr.Config{Nodes: 2, CoresPerNode: 2, LogEntries: 512})

	t.Run("skiplist-pq", func(t *testing.T) {
		inst, err := nr.New(func() nr.Sequential[ds.PQOp, ds.PQResult] {
			return ds.NewSkipListPQ(3)
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveAndCompare(t, inst, func(rng *workload.RNG) ds.PQOp {
			switch rng.Intn(3) {
			case 0:
				return ds.PQOp{Kind: ds.PQInsert, Key: int64(rng.Intn(5000))}
			case 1:
				return ds.PQOp{Kind: ds.PQDeleteMin}
			}
			return ds.PQOp{Kind: ds.PQFindMin}
		}, func(s nr.Sequential[ds.PQOp, ds.PQResult]) int { return s.(*ds.SkipListPQ).Len() })
	})

	t.Run("pairing-heap", func(t *testing.T) {
		inst, err := nr.New(func() nr.Sequential[ds.PQOp, ds.PQResult] {
			return ds.NewHeapPQ()
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveAndCompare(t, inst, func(rng *workload.RNG) ds.PQOp {
			if rng.Intn(2) == 0 {
				return ds.PQOp{Kind: ds.PQInsert, Key: int64(rng.Intn(5000))}
			}
			return ds.PQOp{Kind: ds.PQDeleteMin}
		}, func(s nr.Sequential[ds.PQOp, ds.PQResult]) int { return s.(*ds.HeapPQ).Len() })
	})

	t.Run("stack", func(t *testing.T) {
		inst, err := nr.New(func() nr.Sequential[ds.StackOp, ds.StackResult] {
			return ds.NewSeqStack(64)
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveAndCompare(t, inst, func(rng *workload.RNG) ds.StackOp {
			if rng.Intn(2) == 0 {
				return ds.StackOp{Kind: ds.StackPush, Value: int64(rng.Next())}
			}
			return ds.StackOp{Kind: ds.StackPop}
		}, func(s nr.Sequential[ds.StackOp, ds.StackResult]) int { return s.(*ds.SeqStack).Len() })
	})

	t.Run("sorted-set", func(t *testing.T) {
		inst, err := nr.New(func() nr.Sequential[ds.ZOp, ds.ZResult] {
			return ds.NewSeqSortedSet(16, 11)
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveAndCompare(t, inst, func(rng *workload.RNG) ds.ZOp {
			m := fmt.Sprintf("m%d", rng.Intn(40))
			switch rng.Intn(4) {
			case 0:
				return ds.ZOp{Kind: ds.ZAdd, Member: m, Score: float64(rng.Intn(100))}
			case 1:
				return ds.ZOp{Kind: ds.ZIncrBy, Member: m, Score: 1}
			case 2:
				return ds.ZOp{Kind: ds.ZRem, Member: m}
			}
			return ds.ZOp{Kind: ds.ZRank, Member: m}
		}, func(s nr.Sequential[ds.ZOp, ds.ZResult]) int { return s.(*ds.SeqSortedSet).Inner().Len() })
	})

	t.Run("miniredis-store", func(t *testing.T) {
		inst, err := nr.New(func() nr.Sequential[miniredis.StoreOp, miniredis.StoreResult] {
			return miniredis.NewStore(13)
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveAndCompare(t, inst, func(rng *workload.RNG) miniredis.StoreOp {
			m := fmt.Sprintf("m%d", rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				return miniredis.StoreOp{Cmd: miniredis.CmdZIncrBy, Key: "z", Member: m, Score: 1}
			case 1:
				return miniredis.StoreOp{Cmd: miniredis.CmdZRank, Key: "z", Member: m}
			}
			return miniredis.StoreOp{Cmd: miniredis.CmdZCard, Key: "z"}
		}, func(s nr.Sequential[miniredis.StoreOp, miniredis.StoreResult]) int {
			return s.(*miniredis.Store).Len()
		})
	})
}

// driveAndCompare runs 4 goroutines of ops, then asserts every replica
// reaches the same size.
func driveAndCompare[O, R any](t *testing.T, inst *nr.Instance[O, R],
	gen func(*workload.RNG) O, size func(nr.Sequential[O, R]) int) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		h, err := inst.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *nr.Handle[O, R]) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(g + 1))
			for i := 0; i < 1200; i++ {
				h.Execute(gen(rng))
			}
		}(g, h)
	}
	wg.Wait()
	inst.Quiesce()
	sizes := make([]int, inst.Replicas())
	for n := 0; n < inst.Replicas(); n++ {
		inst.Inspect(n, func(s nr.Sequential[O, R]) { sizes[n] = size(s) })
	}
	for n := 1; n < len(sizes); n++ {
		if sizes[n] != sizes[0] {
			t.Fatalf("replica sizes diverged: %v", sizes)
		}
	}
}
