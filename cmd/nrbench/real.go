// The -real benchmark: drive the actual NR implementation (the public nr
// API, metrics observer attached) with a mixed read/update workload and
// report throughput plus per-class latency percentiles — the same numbers
// the paper's §8 figures are made of, measured rather than simulated.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	nr "github.com/asplos17/nr"
)

type realConfig struct {
	Duration time.Duration
	Threads  int
	ReadPct  int
	JSONPath string
}

// benchMap is the workload structure: a plain map, replicated by NR.
type benchMap struct{ m map[uint64]uint64 }

type benchOp struct {
	key   uint64
	val   uint64
	write bool
}

func (b *benchMap) Execute(op benchOp) uint64 {
	if op.write {
		b.m[op.key] = op.val
		return op.val
	}
	return b.m[op.key]
}

func (b *benchMap) IsReadOnly(op benchOp) bool { return !op.write }

// latencyReport is one operation class's latency summary in the JSON output.
type latencyReport struct {
	Count  uint64 `json:"count"`
	P50Ns  uint64 `json:"p50_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	MeanNs uint64 `json:"mean_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

// realResult is the BENCH_PR2.json schema.
type realResult struct {
	Benchmark      string        `json:"benchmark"`
	Threads        int           `json:"threads"`
	DurationSecs   float64       `json:"duration_secs"`
	ReadPct        int           `json:"read_pct"`
	TotalOps       uint64        `json:"total_ops"`
	ThroughputOpsS float64       `json:"throughput_ops_per_sec"`
	Read           latencyReport `json:"read"`
	Update         latencyReport `json:"update"`
	BatchMean      float64       `json:"combiner_batch_mean"`
	BatchP99       uint64        `json:"combiner_batch_p99"`
	Combines       uint64        `json:"combine_rounds"`
	CombinedOps    uint64        `json:"combined_ops"`
}

// xorshift is a tiny deterministic PRNG so the workload needs no locks and
// no allocation.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func runReal(cfg realConfig) error {
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	// Topology sized to the thread count: spread over up to 4 nodes like the
	// paper's testbed, with room so registration cannot fail.
	nodes := 4
	if cfg.Threads < nodes {
		nodes = cfg.Threads
	}
	perNode := (cfg.Threads + nodes - 1) / nodes
	inst, err := nr.New(
		func() nr.Sequential[benchOp, uint64] { return &benchMap{m: make(map[uint64]uint64)} },
		nr.WithNodes(nodes, perNode, 1),
		nr.WithMetrics(),
	)
	if err != nil {
		return err
	}

	const keyspace = 1 << 16
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		h, err := inst.Register()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(h *nr.Handle[benchOp, uint64], seed uint64) {
			defer wg.Done()
			rng := xorshift(seed)
			var ops uint64
			for !stop.Load() {
				r := rng.next()
				op := benchOp{key: r % keyspace, val: r}
				// r>>32 is uniform in [0, 2^32); compare against the read
				// percentage scaled to that range.
				op.write = (r>>32)%100 >= uint64(cfg.ReadPct)
				h.Execute(op)
				ops++
			}
			total.Add(ops)
		}(h, uint64(2*t+1))
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	m := inst.Metrics()
	if m.Observed == nil {
		return fmt.Errorf("metrics observer missing from instance built WithMetrics")
	}
	o := m.Observed
	res := realResult{
		Benchmark:      "nr-map-mixed",
		Threads:        cfg.Threads,
		DurationSecs:   elapsed.Seconds(),
		ReadPct:        cfg.ReadPct,
		TotalOps:       total.Load(),
		ThroughputOpsS: float64(total.Load()) / elapsed.Seconds(),
		Read: latencyReport{
			Count: o.Read.Count, P50Ns: o.Read.P50Ns, P99Ns: o.Read.P99Ns,
			MeanNs: o.Read.MeanNs, MaxNs: o.Read.MaxNs,
		},
		Update: latencyReport{
			Count: o.Update.Count, P50Ns: o.Update.P50Ns, P99Ns: o.Update.P99Ns,
			MeanNs: o.Update.MeanNs, MaxNs: o.Update.MaxNs,
		},
		BatchMean:   o.Batch.Mean,
		BatchP99:    o.Batch.P99,
		Combines:    m.Stats.Combines,
		CombinedOps: m.Stats.CombinedOps,
	}

	fmt.Printf("=== real NR benchmark ===\n")
	fmt.Printf("threads=%d  read%%=%d  duration=%.1fs\n", res.Threads, res.ReadPct, res.DurationSecs)
	fmt.Printf("throughput: %.2f Mops/s (%d ops)\n", res.ThroughputOpsS/1e6, res.TotalOps)
	fmt.Printf("read   p50=%s p99=%s (n=%d)\n",
		time.Duration(res.Read.P50Ns), time.Duration(res.Read.P99Ns), res.Read.Count)
	fmt.Printf("update p50=%s p99=%s (n=%d)\n",
		time.Duration(res.Update.P50Ns), time.Duration(res.Update.P99Ns), res.Update.Count)
	fmt.Printf("combiner batches: mean=%.1f p99=%d over %d rounds\n",
		res.BatchMean, res.BatchP99, res.Combines)

	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	return nil
}
