// The -real benchmark: drive the actual NR implementation (the public nr
// API, metrics observer attached) with a mixed read/update workload and
// report throughput plus per-class latency percentiles — the same numbers
// the paper's §8 figures are made of, measured rather than simulated.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	nr "github.com/asplos17/nr"
)

type realConfig struct {
	Duration time.Duration
	Threads  int
	ReadPct  int
	JSONPath string
	// Shards, when non-empty, appends a sharding sweep (shard.go) to the
	// -tracecmp run: one measurement per listed shard count.
	Shards []int
	// Logs, when non-empty, appends a multi-log sweep (logs.go) to the
	// -tracecmp run: one measurement per listed log count.
	Logs []int
	// PersistCmp appends the durability-cost comparison (persist.go) to the
	// -tracecmp run.
	PersistCmp bool
	// BatchCmp appends the batch-policy ladder (batch.go) to the -tracecmp
	// run; AssertBatchP99, when positive, makes an adaptive arm whose
	// combiner_batch_p99 falls below it a hard failure.
	BatchCmp       bool
	AssertBatchP99 int
	// ObsCmp appends the telemetry-collector cost comparison (obscmp.go) to
	// the -tracecmp run.
	ObsCmp bool
}

// benchMap is the workload structure: a plain map, replicated by NR.
type benchMap struct{ m map[uint64]uint64 }

type benchOp struct {
	key   uint64
	val   uint64
	write bool
}

func (b *benchMap) Execute(op benchOp) uint64 {
	if op.write {
		b.m[op.key] = op.val
		return op.val
	}
	return b.m[op.key]
}

func (b *benchMap) IsReadOnly(op benchOp) bool { return !op.write }

// latencyReport is one operation class's latency summary in the JSON output.
type latencyReport struct {
	Count  uint64 `json:"count"`
	P50Ns  uint64 `json:"p50_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	MeanNs uint64 `json:"mean_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

// realResult is the BENCH_PR2.json schema.
type realResult struct {
	Benchmark      string        `json:"benchmark"`
	Threads        int           `json:"threads"`
	DurationSecs   float64       `json:"duration_secs"`
	ReadPct        int           `json:"read_pct"`
	TotalOps       uint64        `json:"total_ops"`
	ThroughputOpsS float64       `json:"throughput_ops_per_sec"`
	Read           latencyReport `json:"read"`
	Update         latencyReport `json:"update"`
	BatchMean      float64       `json:"combiner_batch_mean"`
	BatchP99       uint64        `json:"combiner_batch_p99"`
	Combines       uint64        `json:"combine_rounds"`
	CombinedOps    uint64        `json:"combined_ops"`
}

// xorshift is a tiny deterministic PRNG so the workload needs no locks and
// no allocation.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// normalize fills the defaulted realConfig fields in place.
func (cfg *realConfig) normalize() {
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
}

// topoOption sizes the modeled topology to the thread count: spread over up
// to 4 nodes like the paper's testbed, with room so registration cannot
// fail.
func (cfg realConfig) topoOption() nr.Option {
	nodes := 4
	if cfg.Threads < nodes {
		nodes = cfg.Threads
	}
	perNode := (cfg.Threads + nodes - 1) / nodes
	return nr.WithNodes(nodes, perNode, 1)
}

// runWorkers drives a workload against any executor — single-log, sharded,
// persistent — for cfg.Duration and returns the op count and wall time. gen
// maps one PRNG draw to the next operation; every arm of every comparison
// (real, persistence, sharding, batching) shares this one driver.
func runWorkers[O, R any](exec nr.Executor[O, R], cfg realConfig, gen func(r uint64) O) (uint64, time.Duration, error) {
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		h, err := exec.RegisterExecutor()
		if err != nil {
			return 0, 0, err
		}
		wg.Add(1)
		go func(h nr.OpExecutor[O, R], seed uint64) {
			defer wg.Done()
			rng := xorshift(seed)
			var ops uint64
			for !stop.Load() {
				h.Execute(gen(rng.next()))
				ops++
			}
			total.Add(ops)
		}(h, uint64(2*t+1))
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	return total.Load(), time.Since(start), nil
}

// mixedOpGen builds the map workload's op generator: uniform keys, the
// given read percentage.
func mixedOpGen(readPct int) func(r uint64) benchOp {
	const keyspace = 1 << 16
	return func(r uint64) benchOp {
		op := benchOp{key: r % keyspace, val: r}
		// r>>32 is uniform in [0, 2^32); compare against the read
		// percentage scaled to that range.
		op.write = (r>>32)%100 >= uint64(readPct)
		return op
	}
}

// foldResult reads the executor's metrics into the JSON schema.
func foldResult(inst nr.Executor[benchOp, uint64], cfg realConfig, total uint64, elapsed time.Duration) (realResult, error) {
	m := inst.Metrics()
	if m.Observed == nil {
		return realResult{}, fmt.Errorf("metrics observer missing from instance built WithMetrics")
	}
	o := m.Observed
	res := realResult{
		Benchmark:      "nr-map-mixed",
		Threads:        cfg.Threads,
		DurationSecs:   elapsed.Seconds(),
		ReadPct:        cfg.ReadPct,
		TotalOps:       total,
		ThroughputOpsS: float64(total) / elapsed.Seconds(),
		Read: latencyReport{
			Count: o.Read.Count, P50Ns: o.Read.P50Ns, P99Ns: o.Read.P99Ns,
			MeanNs: o.Read.MeanNs, MaxNs: o.Read.MaxNs,
		},
		Update: latencyReport{
			Count: o.Update.Count, P50Ns: o.Update.P50Ns, P99Ns: o.Update.P99Ns,
			MeanNs: o.Update.MeanNs, MaxNs: o.Update.MaxNs,
		},
		BatchMean:   o.Batch.Mean,
		BatchP99:    o.Batch.P99,
		Combines:    m.Stats.Combines,
		CombinedOps: m.Stats.CombinedOps,
	}
	return res, nil
}

// measureReal runs one measurement of the mixed workload and returns the
// BENCH_PR2-schema result. With rec non-nil, the instance is built with the
// flight recorder attached — the recorder-on arm of the overhead
// comparison.
func measureReal(cfg realConfig, rec *nr.FlightRecorder) (realResult, error) {
	cfg.normalize()
	opts := []nr.Option{cfg.topoOption(), nr.WithMetrics()}
	if rec != nil {
		opts = append(opts, nr.WithFlightRecorderInstance(rec))
	}
	inst, err := nr.New(
		func() nr.Sequential[benchOp, uint64] { return &benchMap{m: make(map[uint64]uint64)} },
		opts...,
	)
	if err != nil {
		return realResult{}, err
	}
	total, elapsed, err := runWorkers[benchOp, uint64](inst, cfg, mixedOpGen(cfg.ReadPct))
	if err != nil {
		return realResult{}, err
	}
	return foldResult(inst, cfg, total, elapsed)
}

// printReal renders one measurement's summary to stdout.
func printReal(res realResult) {
	fmt.Printf("threads=%d  read%%=%d  duration=%.1fs\n", res.Threads, res.ReadPct, res.DurationSecs)
	fmt.Printf("throughput: %.2f Mops/s (%d ops)\n", res.ThroughputOpsS/1e6, res.TotalOps)
	fmt.Printf("read   p50=%s p99=%s (n=%d)\n",
		time.Duration(res.Read.P50Ns), time.Duration(res.Read.P99Ns), res.Read.Count)
	fmt.Printf("update p50=%s p99=%s (n=%d)\n",
		time.Duration(res.Update.P50Ns), time.Duration(res.Update.P99Ns), res.Update.Count)
	fmt.Printf("combiner batches: mean=%.1f p99=%d over %d rounds\n",
		res.BatchMean, res.BatchP99, res.Combines)
}

// writeJSON writes v, indented, to path.
func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func runReal(cfg realConfig) error {
	res, err := measureReal(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Printf("=== real NR benchmark ===\n")
	printReal(res)
	if cfg.JSONPath != "" {
		return writeJSON(cfg.JSONPath, res)
	}
	return nil
}

// traceBudgetPct is the stated flight-recorder overhead budget: the
// recorder-on run must keep at least (100 - traceBudgetPct)% of the
// recorder-off throughput. DESIGN.md "Tracing & flight recorder" derives
// the number; the -tracecmp benchmark checks it.
const traceBudgetPct = 25.0

// flightRecorderReport is BENCH_PR3.json's addition over the BENCH_PR2
// schema: the measured recorder-on vs recorder-off delta.
type flightRecorderReport struct {
	ThroughputOnOpsS  float64 `json:"throughput_on_ops_per_sec"`
	ThroughputOffOpsS float64 `json:"throughput_off_ops_per_sec"`
	OverheadPct       float64 `json:"overhead_pct"`
	BudgetPct         float64 `json:"budget_pct"`
	WithinBudget      bool    `json:"within_budget"`
	RingSlots         int     `json:"ring_slots"`
	EventsInSnapshot  int     `json:"events_in_snapshot"`
}

// tracedResult is the BENCH_PR3/PR5/PR6/PR7/PR10.json schema: BENCH_PR2's
// fields (from the recorder-off run, so the series stays comparable across
// PRs), the flight-recorder overhead block, and — when requested — the
// sharding sweep, the multi-log sweep, the durability-cost ladder, and the
// batch-policy ladder.
type tracedResult struct {
	realResult
	FlightRecorder flightRecorderReport `json:"flight_recorder"`
	ShardSweep     *shardSweepReport    `json:"shard_sweep,omitempty"`
	LogSweep       *logSweepReport      `json:"log_sweep,omitempty"`
	Persistence    *persistReport       `json:"persistence,omitempty"`
	BatchLadder    *batchLadderReport   `json:"batch_ladder,omitempty"`
	Telemetry      *obsReport           `json:"telemetry,omitempty"`
}

// runTraceCompare measures the same workload twice — recorder off, then
// recorder on — and reports the throughput delta against the stated budget.
func runTraceCompare(cfg realConfig) error {
	jsonPath := cfg.JSONPath
	cfg.JSONPath = ""

	fmt.Printf("=== real NR benchmark (flight recorder off) ===\n")
	off, err := measureReal(cfg, nil)
	if err != nil {
		return err
	}
	printReal(off)

	rec := nr.NewFlightRecorder(nr.TraceConfig{RingSlots: 4096})
	fmt.Printf("=== real NR benchmark (flight recorder on) ===\n")
	on, err := measureReal(cfg, rec)
	if err != nil {
		return err
	}
	printReal(on)

	overhead := 0.0
	if off.ThroughputOpsS > 0 {
		overhead = (off.ThroughputOpsS - on.ThroughputOpsS) / off.ThroughputOpsS * 100
	}
	res := tracedResult{
		realResult: off,
		FlightRecorder: flightRecorderReport{
			ThroughputOnOpsS:  on.ThroughputOpsS,
			ThroughputOffOpsS: off.ThroughputOpsS,
			OverheadPct:       overhead,
			BudgetPct:         traceBudgetPct,
			WithinBudget:      overhead <= traceBudgetPct,
			RingSlots:         rec.Config().RingSlots,
			EventsInSnapshot:  len(rec.Snapshot().Events()),
		},
	}
	fmt.Printf("=== flight recorder overhead ===\n")
	fmt.Printf("off: %.2f Mops/s   on: %.2f Mops/s   overhead: %.1f%% (budget %.0f%%)\n",
		off.ThroughputOpsS/1e6, on.ThroughputOpsS/1e6, overhead, traceBudgetPct)
	if !res.FlightRecorder.WithinBudget {
		fmt.Printf("WARNING: overhead exceeds budget\n")
	}
	if len(cfg.Shards) > 0 {
		sweep, err := runShardSweep(cfg, cfg.Shards)
		if err != nil {
			return err
		}
		res.ShardSweep = sweep
	}
	if len(cfg.Logs) > 0 {
		sweep, err := runLogSweep(cfg, cfg.Logs)
		if err != nil {
			return err
		}
		res.LogSweep = sweep
	}
	if cfg.PersistCmp {
		rep, err := runPersistCompare(cfg)
		if err != nil {
			return err
		}
		res.Persistence = rep
	}
	if cfg.BatchCmp {
		rep, err := runBatchLadder(cfg, cfg.AssertBatchP99)
		if err != nil {
			return err
		}
		res.BatchLadder = rep
	}
	if cfg.ObsCmp {
		rep, err := runObsCompare(cfg)
		if err != nil {
			return err
		}
		res.Telemetry = rep
	}
	if jsonPath != "" {
		return writeJSON(jsonPath, res)
	}
	return nil
}

// runPersistOnly is the standalone -persistcmp mode: just the durability
// ladder, with the report as the whole JSON document.
func runPersistOnly(cfg realConfig) error {
	jsonPath := cfg.JSONPath
	rep, err := runPersistCompare(cfg)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		return writeJSON(jsonPath, struct {
			Persistence *persistReport `json:"persistence"`
		}{rep})
	}
	return nil
}
