// The -shards sweep: measure the sharded deployment (nr.NewSharded) at
// several shard counts against the same total machine. The paper's §5.1
// bottleneck is the single shared log — every update funnels through one
// tail CAS and replays into every replica. Sharding splits both costs: the
// sweep holds the software topology fixed and partitions its nodes across
// shards (S shards over N nodes → N/S replicas per shard), the deployment
// SmartPQ-style systems use one NR instance per NUMA domain for. Each
// update then replays into N/S replicas instead of N, so update-heavy
// throughput scales with the shard count even on one socket.
package main

import (
	"fmt"
	"strconv"
	"strings"

	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/ds"
)

// shardPoint is one shard count's measurement in the sweep.
type shardPoint struct {
	Shards         int     `json:"shards"`
	NodesPerShard  int     `json:"nodes_per_shard"`
	ThreadsPerNode int     `json:"threads_per_node"`
	TotalOps       uint64  `json:"total_ops"`
	ThroughputOpsS float64 `json:"throughput_ops_per_sec"`
}

// shardSweepReport is BENCH_PR5.json's addition over the BENCH_PR3 schema:
// the shard sweep, run update-heavy because the shared log is an
// update-side bottleneck (reads never append).
type shardSweepReport struct {
	Benchmark string       `json:"benchmark"`
	ReadPct   int          `json:"read_pct"`
	Points    []shardPoint `json:"points"`
	// Speedup4x is 4-shard / 1-shard throughput (0 when either point is
	// missing from the sweep list).
	Speedup4x float64 `json:"speedup_4x"`
}

// parseShardList parses the -shards flag ("1,2,4,8") into shard counts.
func parseShardList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q in -shards", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// shardSweepReadPct fixes the sweep's mix at update-heavy: 10% reads keeps
// a live read path while the log-append side dominates, which is the
// regime sharding exists for.
const shardSweepReadPct = 10

// measureSharded runs the paper's dictionary workload (§8.1.3: skip-list
// insert/lookup, the structure whose O(log n) pointer-chasing updates make
// the per-replica replay tax visible) against a sharded instance. The total
// topology matches measureReal's (up to 4 nodes, sized to the thread count)
// and is partitioned: each shard gets nodes/shards of it, so the machine
// modeled stays the same across the sweep.
func measureSharded(cfg realConfig, shards int) (shardPoint, error) {
	totalNodes := 4
	if cfg.Threads < totalNodes {
		totalNodes = cfg.Threads
	}
	nodesPerShard := totalNodes / shards
	if nodesPerShard < 1 {
		nodesPerShard = 1
	}
	perNode := (cfg.Threads + nodesPerShard - 1) / nodesPerShard
	// Key-mod routing: the workload's keys are uniform already, so the
	// cheaper modulus routes as evenly as the hashing Router would.
	inst, err := nr.NewSharded(
		func() nr.Sequential[ds.DictOp, ds.DictResult] { return ds.NewSkipListDict(1) },
		shards,
		func(op ds.DictOp) int { return int(uint64(op.Key) % uint64(shards)) },
		nr.WithNodes(nodesPerShard, perNode, 1),
	)
	if err != nil {
		return shardPoint{}, err
	}
	defer inst.Close()

	const keyspace = 1 << 16
	total, elapsed, err := runWorkers[ds.DictOp, ds.DictResult](inst, cfg, func(r uint64) ds.DictOp {
		op := ds.DictOp{Kind: ds.DictInsert, Key: int64(r % keyspace), Value: r}
		if (r>>32)%100 < uint64(cfg.ReadPct) {
			op.Kind = ds.DictLookup
		}
		return op
	})
	if err != nil {
		return shardPoint{}, err
	}

	return shardPoint{
		Shards:         shards,
		NodesPerShard:  nodesPerShard,
		ThreadsPerNode: perNode,
		TotalOps:       total,
		ThroughputOpsS: float64(total) / elapsed.Seconds(),
	}, nil
}

// runShardSweep measures every shard count in the list and reports the
// 4-vs-1 speedup when both are present.
func runShardSweep(cfg realConfig, counts []int) (*shardSweepReport, error) {
	cfg.ReadPct = shardSweepReadPct
	rep := &shardSweepReport{Benchmark: "nr-skiplist-dict-mixed", ReadPct: cfg.ReadPct}
	byCount := map[int]float64{}
	fmt.Printf("=== shard sweep (update-heavy: read%%=%d) ===\n", cfg.ReadPct)
	for _, n := range counts {
		pt, err := measureSharded(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", n, err)
		}
		rep.Points = append(rep.Points, pt)
		byCount[pt.Shards] = pt.ThroughputOpsS
		fmt.Printf("shards=%d  nodes/shard=%d  %.2f Mops/s (%d ops)\n",
			pt.Shards, pt.NodesPerShard, pt.ThroughputOpsS/1e6, pt.TotalOps)
	}
	if one, ok := byCount[1]; ok && one > 0 {
		if four, ok := byCount[4]; ok {
			rep.Speedup4x = four / one
			fmt.Printf("4-shard speedup over 1-shard: %.2fx\n", rep.Speedup4x)
		}
	}
	return rep, nil
}
