// Command nrbench regenerates the paper's evaluation: every figure and
// table of §8, as throughput series printed in the same units the paper
// plots (operations per microsecond).
//
// Usage:
//
//	nrbench -list                 # show all experiment ids
//	nrbench -fig 5b               # one experiment
//	nrbench -all                  # everything (slow)
//	nrbench -fig 7c -ops 4000     # more ops per thread = smoother series
//
// Thread-sweep experiments run on the deterministic NUMA simulator
// (internal/sim); the memory tables measure the real implementation.
//
// -real instead benchmarks the actual NR implementation end to end (no
// simulator): a mixed read/update workload against the public nr API with
// metrics enabled, reporting throughput and per-class latency percentiles.
// -json PATH writes the -real results as machine-readable JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"time"

	"github.com/asplos17/nr/internal/bench"
)

func main() {
	var (
		figID       = flag.String("fig", "", "experiment id (e.g. 5b, 7c, 11a, 14, size)")
		all         = flag.Bool("all", false, "run every experiment")
		list        = flag.Bool("list", false, "list experiment ids")
		ops         = flag.Int("ops", 0, "operations per simulated thread (default 1500)")
		real        = flag.Bool("real", false, "benchmark the real implementation (not the simulator)")
		tracecmp    = flag.Bool("tracecmp", false, "benchmark the real implementation twice (flight recorder off/on) and report the overhead")
		jsonPath    = flag.String("json", "", "with -real/-tracecmp: write results as JSON to this path")
		duration    = flag.Duration("dur", 2*time.Second, "with -real: measurement duration")
		threads     = flag.Int("threads", 0, "with -real: worker goroutines (default GOMAXPROCS)")
		readPct     = flag.Int("readpct", 90, "with -real: percentage of read operations")
		shards      = flag.String("shards", "", "with -tracecmp: also sweep nr.NewSharded at these shard counts (e.g. 1,2,4,8)")
		logsFlag    = flag.String("logs", "", "with -tracecmp: also sweep nr.WithLogs at these log counts (e.g. 1,2,4)")
		persist     = flag.Bool("persistcmp", false, "benchmark the durability cost: persistence off vs fsync-never vs group-fsync on an all-update workload")
		batchcmp    = flag.Bool("batchcmp", false, "benchmark the batch-policy ladder: none vs fixed-linger vs adaptive vs parallel-combining on an all-update workload")
		assertBatch = flag.Int("assertbatch", 0, "with -batchcmp: fail unless the adaptive arm's combiner_batch_p99 is at least this")
		obscmp      = flag.Bool("obscmp", false, "benchmark the telemetry-collector cost: windowed collector off vs on at its default cadence")
		cpuprof     = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nrbench: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nrbench: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	if *real || *tracecmp || *persist || *batchcmp || *obscmp {
		shardCounts, err := parseShardList(*shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nrbench: %v\n", err)
			os.Exit(2)
		}
		logCounts, err := parseLogList(*logsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nrbench: %v\n", err)
			os.Exit(2)
		}
		cfg := realConfig{
			Duration:       *duration,
			Threads:        *threads,
			ReadPct:        *readPct,
			JSONPath:       *jsonPath,
			Shards:         shardCounts,
			Logs:           logCounts,
			PersistCmp:     *persist,
			BatchCmp:       *batchcmp,
			AssertBatchP99: *assertBatch,
			ObsCmp:         *obscmp,
		}
		run := runReal
		switch {
		case *tracecmp:
			run = runTraceCompare
		case *persist && !*real:
			run = runPersistOnly
		case *batchcmp && !*real:
			run = runBatchOnly
		case *obscmp && !*real:
			run = runObsOnly
		}
		if err := run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "nrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	figs := bench.Figures()
	if *list {
		ids := make([]string, 0, len(figs))
		for id := range figs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-6s %s\n", id, figs[id].Title)
		}
		return
	}

	cfg := bench.Config{OpsPerThread: *ops}
	runOne := func(id string) {
		f, ok := figs[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "nrbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		series := f.Run(cfg)
		fmt.Printf("=== Figure %s: %s ===\n", f.ID, f.Title)
		bench.Print(os.Stdout, f.XLabel, series)
		if s := bench.Summarize(series); s != "" {
			fmt.Println(s)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	switch {
	case *all:
		ids := make([]string, 0, len(figs))
		for id := range figs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			runOne(id)
		}
	case *figID != "":
		runOne(*figID)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
