// Command nrbench regenerates the paper's evaluation: every figure and
// table of §8, as throughput series printed in the same units the paper
// plots (operations per microsecond).
//
// Usage:
//
//	nrbench -list                 # show all experiment ids
//	nrbench -fig 5b               # one experiment
//	nrbench -all                  # everything (slow)
//	nrbench -fig 7c -ops 4000     # more ops per thread = smoother series
//
// Thread-sweep experiments run on the deterministic NUMA simulator
// (internal/sim); the memory tables measure the real implementation.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/asplos17/nr/internal/bench"
)

func main() {
	var (
		figID = flag.String("fig", "", "experiment id (e.g. 5b, 7c, 11a, 14, size)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		ops   = flag.Int("ops", 0, "operations per simulated thread (default 1500)")
	)
	flag.Parse()

	figs := bench.Figures()
	if *list {
		ids := make([]string, 0, len(figs))
		for id := range figs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-6s %s\n", id, figs[id].Title)
		}
		return
	}

	cfg := bench.Config{OpsPerThread: *ops}
	runOne := func(id string) {
		f, ok := figs[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "nrbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		series := f.Run(cfg)
		fmt.Printf("=== Figure %s: %s ===\n", f.ID, f.Title)
		bench.Print(os.Stdout, f.XLabel, series)
		if s := bench.Summarize(series); s != "" {
			fmt.Println(s)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	switch {
	case *all:
		ids := make([]string, 0, len(figs))
		for id := range figs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			runOne(id)
		}
	case *figID != "":
		runOne(*figID)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
