// The -obscmp benchmark: the 90%-read workload measured twice — metrics
// observer only (the long-standing baseline configuration) versus the full
// telemetry collector sampling at its default 1s cadence — to price the
// continuous telemetry plane. The stated budget is 3%: the collector's
// steady-state cost is one Gauges capture plus one bucket copy per second
// on its own goroutine, nothing on the operation path, so the measured
// delta should be noise. Rounds interleave and the headline is the median
// round, the same methodology as -persistcmp.
package main

import (
	"fmt"
	"sort"
	"time"

	nr "github.com/asplos17/nr"
)

// obsBudgetPct is the acceptance bar: collector-on overhead on the mixed
// workload's throughput must stay under this.
const obsBudgetPct = 3.0

// obsInterval is the cadence of the measured collector arm (the
// WithTelemetry default).
const obsInterval = time.Second

// obsRounds is how many interleaved (off, on) measurement rounds run.
const obsRounds = 3

// obsSample is one round's pair of throughputs.
type obsSample struct {
	OffOpsS float64 `json:"off_ops_per_sec"`
	OnOpsS  float64 `json:"on_ops_per_sec"`
}

// obsReport is BENCH_PR8.json's addition: the telemetry-collector cost.
type obsReport struct {
	ReadPct           int         `json:"read_pct"`
	Rounds            int         `json:"rounds"`
	ThroughputOffOpsS float64     `json:"throughput_off_ops_per_sec"`
	ThroughputOnOpsS  float64     `json:"throughput_on_ops_per_sec"`
	OverheadPct       float64     `json:"overhead_pct"`
	BudgetPct         float64     `json:"budget_pct"`
	WithinBudget      bool        `json:"within_budget"`
	IntervalMs        float64     `json:"interval_ms"`
	WindowsCaptured   int         `json:"windows_captured"`
	Samples           []obsSample `json:"samples"`
}

// measureObsArm runs the mixed workload with the telemetry collector
// attached and returns the measurement plus how many windows it derived.
func measureObsArm(cfg realConfig) (realResult, int, error) {
	cfg.normalize()
	inst, err := nr.New(
		func() nr.Sequential[benchOp, uint64] { return &benchMap{m: make(map[uint64]uint64)} },
		cfg.topoOption(),
		nr.WithTelemetry(obsInterval, 120),
	)
	if err != nil {
		return realResult{}, 0, err
	}
	defer inst.Close()
	total, elapsed, err := runWorkers[benchOp, uint64](inst, cfg, mixedOpGen(cfg.ReadPct))
	if err != nil {
		return realResult{}, 0, err
	}
	res, err := foldResult(inst, cfg, total, elapsed)
	if err != nil {
		return res, 0, err
	}
	return res, len(inst.Telemetry().Snapshot()), nil
}

// obsRound is one interleaved measurement of the two arms.
type obsRound struct {
	off, on realResult
	windows int
}

func (r obsRound) overheadPct() float64 {
	if r.off.ThroughputOpsS <= 0 {
		return 0
	}
	return (r.off.ThroughputOpsS - r.on.ThroughputOpsS) / r.off.ThroughputOpsS * 100
}

// runObsCompare measures the collector-off and collector-on arms over
// several interleaved rounds and reports the median round's overhead
// against the budget.
func runObsCompare(cfg realConfig) (*obsReport, error) {
	fmt.Printf("=== telemetry collector cost (%d%%-read workload, %d rounds) ===\n",
		cfg.ReadPct, obsRounds)
	rounds := make([]obsRound, 0, obsRounds)
	for i := 0; i < obsRounds; i++ {
		var (
			r   obsRound
			err error
		)
		if r.off, err = measureReal(cfg, nil); err != nil {
			return nil, err
		}
		if r.on, r.windows, err = measureObsArm(cfg); err != nil {
			return nil, err
		}
		fmt.Printf("round %d: off %.2f Mops/s   on %.2f Mops/s (%.1f%%)\n",
			i+1, r.off.ThroughputOpsS/1e6, r.on.ThroughputOpsS/1e6, r.overheadPct())
		rounds = append(rounds, r)
	}

	ranked := make([]obsRound, len(rounds))
	copy(ranked, rounds)
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].overheadPct() < ranked[b].overheadPct() })
	med := ranked[len(ranked)/2]

	rep := &obsReport{
		ReadPct:           cfg.ReadPct,
		Rounds:            obsRounds,
		ThroughputOffOpsS: med.off.ThroughputOpsS,
		ThroughputOnOpsS:  med.on.ThroughputOpsS,
		OverheadPct:       med.overheadPct(),
		BudgetPct:         obsBudgetPct,
		WithinBudget:      med.overheadPct() <= obsBudgetPct,
		IntervalMs:        float64(obsInterval) / float64(time.Millisecond),
		WindowsCaptured:   med.windows,
	}
	for _, r := range rounds {
		rep.Samples = append(rep.Samples, obsSample{OffOpsS: r.off.ThroughputOpsS, OnOpsS: r.on.ThroughputOpsS})
	}
	fmt.Printf("=== telemetry overhead (median of %d rounds) ===\n", obsRounds)
	fmt.Printf("off: %.2f Mops/s   on: %.2f Mops/s   overhead: %.1f%% (budget %.0f%%, %d windows captured)\n",
		med.off.ThroughputOpsS/1e6, med.on.ThroughputOpsS/1e6,
		rep.OverheadPct, obsBudgetPct, med.windows)
	if !rep.WithinBudget {
		fmt.Printf("WARNING: telemetry overhead exceeds budget\n")
	}
	return rep, nil
}

// runObsOnly is the standalone -obscmp mode: just the telemetry cost, with
// the report as the whole JSON document.
func runObsOnly(cfg realConfig) error {
	rep, err := runObsCompare(cfg)
	if err != nil {
		return err
	}
	if cfg.JSONPath != "" {
		return writeJSON(cfg.JSONPath, struct {
			Telemetry *obsReport `json:"telemetry"`
		}{rep})
	}
	return nil
}
