// The -persistcmp benchmark: the same update-heavy workload measured three
// ways — persistence off, WAL appends with fsync disabled (encode + page
// copy only), and the real group-fsync policy — to price durability on the
// hot path. The stated budget: group fsync keeps at least 80% of the
// persistence-off update throughput, because the only hot-path addition is
// an allocation-free encode + in-memory append (DESIGN.md §12); the disk
// lives on the flusher goroutine. The budget assumes the flusher has a
// core of its own — on a single-core host its writes and the kernel
// writeback steal appender cycles and the bench prints an over-budget
// warning (§12's cost note breaks down the floor).
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"time"

	nr "github.com/asplos17/nr"
)

// persistBudgetPct is the acceptance bar: group-fsync overhead on update
// throughput must stay under this.
const persistBudgetPct = 20.0

// persistGroupInterval is the group-fsync cadence of the measured arm (the
// WithPersistence default).
const persistGroupInterval = 2 * time.Millisecond

// benchOpCodec is the WAL codec for benchOp: 17 fixed bytes, no
// allocation on encode.
type benchOpCodec struct{}

func (benchOpCodec) AppendEncode(dst []byte, op benchOp) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint64(dst, op.key)
	dst = binary.LittleEndian.AppendUint64(dst, op.val)
	w := byte(0)
	if op.write {
		w = 1
	}
	return append(dst, w), nil
}

func (benchOpCodec) Decode(data []byte) (benchOp, error) {
	if len(data) != 17 {
		return benchOp{}, fmt.Errorf("benchOp record is %d bytes, want 17", len(data))
	}
	return benchOp{
		key:   binary.LittleEndian.Uint64(data),
		val:   binary.LittleEndian.Uint64(data[8:]),
		write: data[16] != 0,
	}, nil
}

// SnapshotBytes makes benchMap a nr.Snapshotter (WithPersistence requires
// one): u64 count, then sorted key/val pairs — canonical, so equal maps
// produce equal bytes.
func (b *benchMap) SnapshotBytes() ([]byte, error) {
	keys := make([]uint64, 0, len(b.m))
	for k := range b.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := binary.LittleEndian.AppendUint64(nil, uint64(len(keys)))
	for _, k := range keys {
		out = binary.LittleEndian.AppendUint64(out, k)
		out = binary.LittleEndian.AppendUint64(out, b.m[k])
	}
	return out, nil
}

// persistRounds is how many interleaved (off, fsync-never, group-fsync)
// measurement rounds run. The three arms of one round execute back to
// back, so ambient interference (page-cache writeback, noisy neighbors on
// shared hardware) hits them near-equally; the headline numbers come from
// the median round ranked by group-fsync overhead, and every round's
// samples are in the JSON.
const persistRounds = 3

// persistSample is one round's three throughputs.
type persistSample struct {
	OffOpsS     float64 `json:"off_ops_per_sec"`
	NoFsyncOpsS float64 `json:"fsync_never_ops_per_sec"`
	GroupOpsS   float64 `json:"group_fsync_ops_per_sec"`
}

// persistReport is BENCH_PR6.json's addition: the durability cost ladder.
// Throughputs are from all-update runs (ReadPct 0), the workload where
// every single op pays the WAL append. Headline fields are the median
// round; Samples holds every round.
type persistReport struct {
	ReadPct               int             `json:"read_pct"`
	Rounds                int             `json:"rounds"`
	ThroughputOffOpsS     float64         `json:"throughput_off_ops_per_sec"`
	ThroughputNoFsyncOpsS float64         `json:"throughput_fsync_never_ops_per_sec"`
	ThroughputGroupOpsS   float64         `json:"throughput_group_fsync_ops_per_sec"`
	NoFsyncOverheadPct    float64         `json:"fsync_never_overhead_pct"`
	GroupOverheadPct      float64         `json:"group_fsync_overhead_pct"`
	BudgetPct             float64         `json:"budget_pct"`
	WithinBudget          bool            `json:"within_budget"`
	GroupIntervalMs       float64         `json:"group_interval_ms"`
	WALAppends            uint64          `json:"wal_appends"`
	WALFsyncs             uint64          `json:"wal_fsyncs"`
	WALFsyncMillis        float64         `json:"wal_fsync_millis"`
	WALPages              uint64          `json:"wal_pages"`
	Samples               []persistSample `json:"samples"`
}

// measurePersistArm runs the workload against a persistent instance rooted
// in a throwaway directory and returns the measurement plus WAL counters.
func measurePersistArm(cfg realConfig, popts ...nr.PersistOption) (realResult, nr.PersistStats, error) {
	cfg.normalize()
	dir, err := os.MkdirTemp("", "nrbench-persist-")
	if err != nil {
		return realResult{}, nr.PersistStats{}, err
	}
	defer os.RemoveAll(dir)
	inst, err := nr.New(
		func() nr.Sequential[benchOp, uint64] { return &benchMap{m: make(map[uint64]uint64)} },
		cfg.topoOption(),
		nr.WithMetrics(),
		nr.WithPersistence(dir, benchOpCodec{}, popts...),
	)
	if err != nil {
		return realResult{}, nr.PersistStats{}, err
	}
	defer inst.Close()
	total, elapsed, err := runWorkers[benchOp, uint64](inst, cfg, mixedOpGen(cfg.ReadPct))
	if err != nil {
		return realResult{}, nr.PersistStats{}, err
	}
	res, err := foldResult(inst, cfg, total, elapsed)
	if err != nil {
		return res, nr.PersistStats{}, err
	}
	stats, _ := inst.WALStats()
	return res, stats, nil
}

// persistRound is one interleaved measurement of the three arms.
type persistRound struct {
	off, noFsync, group realResult
	stats               nr.PersistStats
}

// groupOverheadPct is the round's group-fsync cost relative to its own
// persistence-off baseline.
func (r persistRound) groupOverheadPct() float64 {
	if r.off.ThroughputOpsS <= 0 {
		return 0
	}
	return (r.off.ThroughputOpsS - r.group.ThroughputOpsS) / r.off.ThroughputOpsS * 100
}

// runPersistCompare measures the three durability arms over several
// interleaved rounds and reports the median round's overhead ladder
// against the budget.
func runPersistCompare(cfg realConfig) (*persistReport, error) {
	cfg.ReadPct = 0 // all updates: every op pays the append

	fmt.Printf("=== persistence cost (all-update workload, %d rounds) ===\n", persistRounds)
	rounds := make([]persistRound, 0, persistRounds)
	for i := 0; i < persistRounds; i++ {
		var (
			r   persistRound
			err error
		)
		if r.off, err = measureReal(cfg, nil); err != nil {
			return nil, err
		}
		if r.noFsync, _, err = measurePersistArm(cfg, nr.WithFsyncNever()); err != nil {
			return nil, err
		}
		if r.group, r.stats, err = measurePersistArm(cfg, nr.WithGroupInterval(persistGroupInterval)); err != nil {
			return nil, err
		}
		fmt.Printf("round %d: off %.2f Mops/s   fsync-never %.2f Mops/s   group-fsync %.2f Mops/s (%.1f%%)\n",
			i+1, r.off.ThroughputOpsS/1e6, r.noFsync.ThroughputOpsS/1e6,
			r.group.ThroughputOpsS/1e6, r.groupOverheadPct())
		rounds = append(rounds, r)
	}

	// Median round by group overhead: robust to one round hit by ambient
	// interference in either direction.
	ranked := make([]persistRound, len(rounds))
	copy(ranked, rounds)
	sort.Slice(ranked, func(a, b int) bool {
		return ranked[a].groupOverheadPct() < ranked[b].groupOverheadPct()
	})
	med := ranked[len(ranked)/2]

	overhead := func(arm float64) float64 {
		if med.off.ThroughputOpsS <= 0 {
			return 0
		}
		return (med.off.ThroughputOpsS - arm) / med.off.ThroughputOpsS * 100
	}
	rep := &persistReport{
		ReadPct:               cfg.ReadPct,
		Rounds:                persistRounds,
		ThroughputOffOpsS:     med.off.ThroughputOpsS,
		ThroughputNoFsyncOpsS: med.noFsync.ThroughputOpsS,
		ThroughputGroupOpsS:   med.group.ThroughputOpsS,
		NoFsyncOverheadPct:    overhead(med.noFsync.ThroughputOpsS),
		GroupOverheadPct:      overhead(med.group.ThroughputOpsS),
		BudgetPct:             persistBudgetPct,
		GroupIntervalMs:       float64(persistGroupInterval) / float64(time.Millisecond),
		WALAppends:            med.stats.Appends,
		WALFsyncs:             med.stats.Fsyncs,
		WALFsyncMillis:        float64(med.stats.FsyncNanos) / 1e6,
		WALPages:              med.stats.Pages,
	}
	for _, r := range rounds {
		rep.Samples = append(rep.Samples, persistSample{
			OffOpsS:     r.off.ThroughputOpsS,
			NoFsyncOpsS: r.noFsync.ThroughputOpsS,
			GroupOpsS:   r.group.ThroughputOpsS,
		})
	}
	rep.WithinBudget = rep.GroupOverheadPct <= persistBudgetPct
	fmt.Printf("=== durability overhead (median of %d rounds) ===\n", persistRounds)
	fmt.Printf("off: %.2f Mops/s   fsync-never: %.2f Mops/s (%.1f%%)   group-fsync: %.2f Mops/s (%.1f%%, budget %.0f%%)\n",
		med.off.ThroughputOpsS/1e6,
		med.noFsync.ThroughputOpsS/1e6, rep.NoFsyncOverheadPct,
		med.group.ThroughputOpsS/1e6, rep.GroupOverheadPct, persistBudgetPct)
	fmt.Printf("wal: %d appends, %d pages, %d fsyncs (%.0fms inside fsync)\n",
		med.stats.Appends, med.stats.Pages, med.stats.Fsyncs, rep.WALFsyncMillis)
	if !rep.WithinBudget {
		fmt.Printf("WARNING: group-fsync overhead exceeds budget\n")
	}
	return rep, nil
}
