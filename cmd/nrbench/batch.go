// The -batchcmp benchmark: the batching-policy ladder. Four arms of the
// same update-heavy map workload, one per policy — no batching, a fixed
// linger window, the adaptive window, and parallel combining on a
// commutativity-declaring structure — reporting each arm's throughput and
// the combiner batch-size distribution (combiner_batch_mean/p99) that the
// policy exists to move. Update-heavy because batching is an append-side
// amortization: k ops in a round share one lock acquisition, one tail CAS,
// and one replay pass, and reads never append.
//
// The ladder runs on its own topology, not -threads/topoOption: batch size
// is capped at the node's slot count (a round collects at most one op per
// same-node thread), so the modeled machine must put enough threads on a
// node for a distribution tail to exist at all. Two nodes of eight keep
// that ceiling at 8 while still exercising cross-node replay.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	nr "github.com/asplos17/nr"
)

const (
	// batchNodes/batchCores size the ladder's modeled machine; batchThreads
	// fills every slot so the per-node ceiling (= batchCores) is reachable.
	batchNodes   = 2
	batchCores   = 8
	batchThreads = batchNodes * batchCores

	// batchFixedLinger/batchFixedMin parameterize the fixed-window arm: the
	// same 100µs the deprecated WithMinBatch shim maps onto, closing early
	// at four ops.
	batchFixedLinger = 100 * time.Microsecond
	batchFixedMin    = 4

	// batchCellCount sizes the parallel arm's atomic-cell structure (a
	// power of two, so key folding is a mask).
	batchCellCount = 1 << 12
)

// benchCells is the parallel-combining arm's structure. benchMap cannot
// declare its writes independent — blind map stores against one replica are
// not thread-safe — so this arm uses what the ConcurrentApplier contract
// asks for: fixed atomic cells, and a write's response is its own value,
// identical in any execution order.
type benchCells struct{ cells [batchCellCount]atomic.Uint64 }

func (b *benchCells) Execute(op benchOp) uint64 {
	if op.write {
		b.cells[op.key&(batchCellCount-1)].Add(op.val)
		return op.val
	}
	return b.cells[op.key&(batchCellCount-1)].Load()
}

func (b *benchCells) IsReadOnly(op benchOp) bool { return !op.write }

// ConcurrentApply declares every write independently applicable: atomic
// adds on distinct-or-same cells commute, and the response (the op's own
// value) does not depend on order.
func (b *benchCells) ConcurrentApply(op benchOp) bool { return op.write }

// batchArm is one policy arm's measurement. The batch fields carry the same
// JSON names as the top-level schema so the series reads uniformly.
type batchArm struct {
	Arm            string  `json:"arm"`
	Policy         string  `json:"policy"`
	Structure      string  `json:"structure"`
	TotalOps       uint64  `json:"total_ops"`
	ThroughputOpsS float64 `json:"throughput_ops_per_sec"`
	UpdateP50Ns    uint64  `json:"update_p50_ns"`
	UpdateP99Ns    uint64  `json:"update_p99_ns"`
	BatchMean      float64 `json:"combiner_batch_mean"`
	BatchP99       uint64  `json:"combiner_batch_p99"`
	Combines       uint64  `json:"combine_rounds"`
	CombinedOps    uint64  `json:"combined_ops"`
	ParallelOps    uint64  `json:"parallel_ops"`
}

// batchLadderReport is BENCH_PR7.json's addition: the policy ladder on the
// all-update workload.
type batchLadderReport struct {
	ReadPct      int        `json:"read_pct"`
	Threads      int        `json:"threads"`
	Nodes        int        `json:"nodes"`
	CoresPerNode int        `json:"cores_per_node"`
	Arms         []batchArm `json:"arms"`
}

// adaptiveArm returns the ladder's adaptive measurement, the arm CI asserts
// batch formation on.
func (r *batchLadderReport) adaptiveArm() *batchArm {
	for i := range r.Arms {
		if r.Arms[i].Arm == "adaptive" {
			return &r.Arms[i]
		}
	}
	return nil
}

// measureBatchArm runs one policy arm and folds its metrics.
func measureBatchArm(cfg realConfig, arm, policyDesc, structure string,
	policy nr.BatchPolicy, create func() nr.Sequential[benchOp, uint64]) (batchArm, error) {
	inst, err := nr.New(create,
		nr.WithNodes(batchNodes, batchCores, 1),
		nr.WithMetrics(),
		nr.WithBatchPolicy(policy),
	)
	if err != nil {
		return batchArm{}, err
	}
	defer inst.Close()
	total, elapsed, err := runWorkers[benchOp, uint64](inst, cfg, mixedOpGen(cfg.ReadPct))
	if err != nil {
		return batchArm{}, err
	}
	res, err := foldResult(inst, cfg, total, elapsed)
	if err != nil {
		return batchArm{}, err
	}
	return batchArm{
		Arm:            arm,
		Policy:         policyDesc,
		Structure:      structure,
		TotalOps:       res.TotalOps,
		ThroughputOpsS: res.ThroughputOpsS,
		UpdateP50Ns:    res.Update.P50Ns,
		UpdateP99Ns:    res.Update.P99Ns,
		BatchMean:      res.BatchMean,
		BatchP99:       res.BatchP99,
		Combines:       res.Combines,
		CombinedOps:    res.CombinedOps,
		ParallelOps:    inst.Stats().ParallelOps,
	}, nil
}

// runBatchLadder measures the four policy arms. With assertP99 > 0, a
// missing or under-formed adaptive arm (combiner_batch_p99 below the bar)
// is an error — the CI hook that keeps the batching engine from silently
// regressing to one-op rounds.
func runBatchLadder(cfg realConfig, assertP99 int) (*batchLadderReport, error) {
	cfg.normalize()
	cfg.ReadPct = 0 // all updates: only appends form batches
	cfg.Threads = batchThreads

	newMap := func() nr.Sequential[benchOp, uint64] { return &benchMap{m: make(map[uint64]uint64)} }
	newCells := func() nr.Sequential[benchOp, uint64] { return &benchCells{} }
	arms := []struct {
		arm, policy, structure string
		p                      nr.BatchPolicy
		create                 func() nr.Sequential[benchOp, uint64]
	}{
		{"none", "no linger", "map", nr.BatchNone(), newMap},
		{"fixed-linger", fmt.Sprintf("MinBatch=%d MaxLinger=%v", batchFixedMin, batchFixedLinger), "map",
			nr.BatchPolicy{MinBatch: batchFixedMin, MaxLinger: batchFixedLinger}, newMap},
		{"adaptive", "adaptive linger", "map", nr.BatchAdaptive(), newMap},
		{"parallel-combining", fmt.Sprintf("MaxLinger=%v Parallel", batchFixedLinger), "atomic-cells",
			nr.BatchPolicy{MaxLinger: batchFixedLinger, Parallel: true}, newCells},
	}

	rep := &batchLadderReport{
		ReadPct: cfg.ReadPct, Threads: cfg.Threads,
		Nodes: batchNodes, CoresPerNode: batchCores,
	}
	fmt.Printf("=== batch-policy ladder (all-update workload, %d threads on %dx%d) ===\n",
		cfg.Threads, batchNodes, batchCores)
	for _, a := range arms {
		m, err := measureBatchArm(cfg, a.arm, a.policy, a.structure, a.p, a.create)
		if err != nil {
			return nil, fmt.Errorf("batch arm %s: %w", a.arm, err)
		}
		rep.Arms = append(rep.Arms, m)
		fmt.Printf("%-18s %.2f Mops/s   batch mean=%.2f p99=%d over %d rounds",
			m.Arm, m.ThroughputOpsS/1e6, m.BatchMean, m.BatchP99, m.Combines)
		if m.ParallelOps > 0 {
			fmt.Printf("   parallel ops=%d", m.ParallelOps)
		}
		fmt.Println()
	}
	if assertP99 > 0 {
		a := rep.adaptiveArm()
		if a == nil {
			return nil, fmt.Errorf("batch ladder has no adaptive arm to assert on")
		}
		if a.BatchP99 < uint64(assertP99) {
			return nil, fmt.Errorf(
				"adaptive arm combiner_batch_p99 = %d, below the asserted floor %d: batches are not forming",
				a.BatchP99, assertP99)
		}
		fmt.Printf("assert: adaptive combiner_batch_p99 = %d >= %d ok\n", a.BatchP99, assertP99)
	}
	return rep, nil
}

// runBatchOnly is the standalone -batchcmp mode: just the ladder, with the
// report as the whole JSON document.
func runBatchOnly(cfg realConfig) error {
	rep, err := runBatchLadder(cfg, cfg.AssertBatchP99)
	if err != nil {
		return err
	}
	if cfg.JSONPath != "" {
		return writeJSON(cfg.JSONPath, struct {
			BatchLadder *batchLadderReport `json:"batch_ladder"`
		}{rep})
	}
	return nil
}
