// The -logs sweep: measure one multi-log instance (nr.WithLogs) at several
// log counts against the same machine and workload. Where the -shards sweep
// splits the keyspace across independent instances — losing cross-shard
// linearizability — the multi-log sweep keeps ONE linearizable instance and
// splits only the log: m conflict classes, m independent tails and combiner
// sets, cross-class operations still possible via the ticket barrier. The
// paper's §5.1 bottleneck (every update through one tail CAS, replayed
// behind every other update) then divides by the number of contended
// classes, which is what the update-heavy arm of this sweep shows.
package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/ds"
)

// logPoint is one log count's measurement in the sweep.
type logPoint struct {
	Logs           int     `json:"logs"`
	TotalOps       uint64  `json:"total_ops"`
	CrossOps       uint64  `json:"cross_ops"`
	ThroughputOpsS float64 `json:"throughput_ops_per_sec"`
}

// logSweepReport is BENCH_PR10.json's addition over the BENCH_PR8 schema:
// the multi-log sweep, update-heavy for the same reason the shard sweep is
// (reads never append, so the log is an update-side bottleneck).
type logSweepReport struct {
	Benchmark string     `json:"benchmark"`
	ReadPct   int        `json:"read_pct"`
	Rounds    int        `json:"rounds"`
	Points    []logPoint `json:"points"`
	// Speedup4x is 4-log / 1-log throughput (0 when either point is missing
	// from the sweep list).
	Speedup4x float64 `json:"speedup_4x"`
}

// parseLogList parses the -logs flag ("1,2,4") into log counts.
func parseLogList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad log count %q in -logs", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// measureMultiLog runs the partitioned dictionary workload against one
// instance configured with m logs. The structure is ds.PartitionedDict(m) —
// one skip list per conflict class, class = key mod m — so the mapper
// contract holds by construction and the m = 1 arm is the classic
// single-log instance (WithLogs(1, ...) takes exactly the pre-multi-log
// paths). Cross-class DictLen operations are deliberately absent from the
// hot loop: they serialize every class through the ticket barrier, and the
// sweep's question is how far the commuting common case scales; the barrier
// cost has its own tests and the cross_ops field stays in the point so a
// future mixed arm slots in.
func measureMultiLog(cfg realConfig, m int) (logPoint, error) {
	inst, err := nr.New(
		func() nr.Sequential[ds.DictOp, ds.DictResult] { return ds.NewPartitionedDict(m, 1) },
		cfg.topoOption(),
		nr.WithLogs[ds.DictOp](m, nr.LogMapperFunc[ds.DictOp](ds.DictClass(m))),
	)
	if err != nil {
		return logPoint{}, err
	}
	defer inst.Close()

	const keyspace = 1 << 16
	total, elapsed, err := runWorkers[ds.DictOp, ds.DictResult](inst, cfg, func(r uint64) ds.DictOp {
		op := ds.DictOp{Kind: ds.DictInsert, Key: int64(r % keyspace), Value: r}
		if (r>>32)%100 < uint64(cfg.ReadPct) {
			op.Kind = ds.DictLookup
		}
		return op
	})
	if err != nil {
		return logPoint{}, err
	}

	return logPoint{
		Logs:           m,
		TotalOps:       total,
		CrossOps:       inst.Metrics().Stats.CrossOps,
		ThroughputOpsS: float64(total) / elapsed.Seconds(),
	}, nil
}

// logSweepRounds is how many times each log count is measured; a point
// reports its median round. The ratio between two points is the headline
// number (speedup_4x), so one round hit by ambient noise — GC from the
// previous arm's discarded structures, a busy CI neighbor — must not land
// in the record. Same reasoning as the persistence comparison's rounds.
const logSweepRounds = 3

// runLogSweep measures every log count in the list (median of
// logSweepRounds rounds each) and reports the 4-vs-1 speedup when both are
// present. The mix is pinned update-heavy like the shard sweep's, so the
// two sweeps' numbers answer the same question for the two scaling
// mechanisms.
func runLogSweep(cfg realConfig, counts []int) (*logSweepReport, error) {
	cfg.ReadPct = shardSweepReadPct
	rep := &logSweepReport{Benchmark: "nr-partitioned-dict-mixed", ReadPct: cfg.ReadPct, Rounds: logSweepRounds}
	byCount := map[int]float64{}
	fmt.Printf("=== multi-log sweep (update-heavy: read%%=%d, median of %d rounds) ===\n",
		cfg.ReadPct, logSweepRounds)
	for _, m := range counts {
		rounds := make([]logPoint, 0, logSweepRounds)
		for i := 0; i < logSweepRounds; i++ {
			pt, err := measureMultiLog(cfg, m)
			if err != nil {
				return nil, fmt.Errorf("logs=%d: %w", m, err)
			}
			rounds = append(rounds, pt)
		}
		sort.Slice(rounds, func(a, b int) bool {
			return rounds[a].ThroughputOpsS < rounds[b].ThroughputOpsS
		})
		pt := rounds[len(rounds)/2]
		rep.Points = append(rep.Points, pt)
		byCount[pt.Logs] = pt.ThroughputOpsS
		fmt.Printf("logs=%d  %.2f Mops/s (%d ops)\n", pt.Logs, pt.ThroughputOpsS/1e6, pt.TotalOps)
	}
	if one, ok := byCount[1]; ok && one > 0 {
		if four, ok := byCount[4]; ok {
			rep.Speedup4x = four / one
			fmt.Printf("4-log speedup over 1-log: %.2fx\n", rep.Speedup4x)
		}
	}
	return rep, nil
}
