package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/miniredis"
	"github.com/asplos17/nr/internal/obs/tsdb"
)

// samplePayload is a representative /metrics body: sharded NR keyspace with
// telemetry, one SLO in breach, and a WAL.
func samplePayload() *payload {
	return &payload{
		Server: miniredis.ServerStats{
			UptimeSeconds:    125,
			ConnectedClients: 3,
			TotalConnections: 17,
			TotalCommands:    1234567,
		},
		NR: &core.Metrics{
			Stats: core.Stats{ReadOps: 1100000, UpdateOps: 140000},
			Log:   core.LogGauges{Tail: 5000, Completed: 4990, Occupancy: 0.12},
			Replicas: []core.ReplicaGauges{
				{Node: 0, CompletedLag: 2, ReaderAcquires: 90000, Registered: 4},
				{Node: 1, CompletedLag: 7, ReaderAcquires: 80000, Registered: 4},
			},
			Persist: &core.PersistGauges{Fsyncs: 321, DurableLag: 12},
		},
		ShardStats: []core.Stats{
			{ReadOps: 600000, UpdateOps: 70000, Combines: 1000, CombinedOps: 9000},
			{ReadOps: 500000, UpdateOps: 70000, Combines: 1100, CombinedOps: 8800},
		},
		Telemetry: &telemetryPayload{
			IntervalSeconds: 1,
			Windows: []tsdb.Window{
				{OpsPerSec: 90000},
				{
					OpsPerSec: 123456, ReadOpsPerSec: 110000, UpdateOpsPerSec: 13456,
					CombinesPerSec: 420, BatchMean: 12.5, BatchP50: 8, BatchP99: 64,
					ReadP50Ns: 850, ReadP99Ns: 12400, ReadP999Ns: 93000,
					UpdateP50Ns: 2100, UpdateP99Ns: 51000, UpdateP999Ns: 410000,
					HasWAL: true, WALAppendsPerSec: 13000, WALFsyncsPerSec: 55,
					FsyncMeanNs: 1800000, DurableLag: 12,
					Nodes: []tsdb.NodeWindow{
						{Node: 0, ReadOpsPerSec: 60000, UpdateOpsPerSec: 7000, CombineBusyFrac: 0.41},
						{Node: 1, ReadOpsPerSec: 50000, UpdateOpsPerSec: 6456, CombineBusyFrac: 0.38},
					},
				},
			},
			SLOs: []tsdb.SLOStatus{{
				Class: "read", P99Ns: 10000, P999Ns: 100000,
				CurrentP99Ns: 12400, CurrentP999Ns: 93000,
				Breached: true, BreachedWindows: 3, TotalWindows: 60, BudgetBurn: 5,
			}},
		},
	}
}

func TestRenderFrame(t *testing.T) {
	cur := samplePayload()
	prev := samplePayload()
	prev.Server.TotalCommands -= 100000
	for i := range prev.ShardStats {
		prev.ShardStats[i].ReadOps -= 50000
		prev.ShardStats[i].UpdateOps -= 5000
	}

	frame := render(cur, prev, time.Second)
	for _, want := range []string{
		"nrtop",                      // header
		"clients 3",                  // server stats
		"ops/s 123.5k",               // windowed throughput
		"p99 12.4µs",                 // read tail from the window
		"BATCH       mean 12.5",      // batch distribution
		"HISTORY",                    // sparkline
		"occupancy 12.0%",            // log gauge
		"NODE",                       // replica table header
		"WAL         durable lag 12", // durability
		"SHARD",                      // per-shard table
		"50.0k",                      // shard read/s from the poll delta
		"BREACH (3/60 windows)",      // SLO state
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q\n%s", want, frame)
		}
	}
}

func TestRenderFirstFrameAndBaseline(t *testing.T) {
	// First frame: no previous poll, telemetry still warming up.
	cur := samplePayload()
	cur.Telemetry.Windows = nil
	frame := render(cur, nil, 0)
	if !strings.Contains(frame, "warming up") {
		t.Errorf("first frame without windows should warm up:\n%s", frame)
	}

	// Baseline method: no NR block at all.
	frame = render(&payload{}, nil, 0)
	if !strings.Contains(frame, "no NR metrics") {
		t.Errorf("baseline frame should say so:\n%s", frame)
	}
}

func TestFetchAgainstServer(t *testing.T) {
	want := samplePayload()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(want)
	}))
	defer ts.Close()

	got, err := fetch(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Server.TotalCommands != want.Server.TotalCommands {
		t.Errorf("TotalCommands = %d, want %d", got.Server.TotalCommands, want.Server.TotalCommands)
	}
	if got.NR == nil || got.NR.Stats.ReadOps != want.NR.Stats.ReadOps {
		t.Errorf("NR stats did not round-trip: %+v", got.NR)
	}
	if got.Telemetry == nil || len(got.Telemetry.Windows) != 2 {
		t.Fatalf("telemetry did not round-trip: %+v", got.Telemetry)
	}
	if w := got.Telemetry.Windows[1]; w.OpsPerSec != 123456 {
		t.Errorf("window ops/s = %v, want 123456", w.OpsPerSec)
	}
	if len(got.Telemetry.SLOs) != 1 || !got.Telemetry.SLOs[0].Breached {
		t.Errorf("SLO did not round-trip: %+v", got.Telemetry.SLOs)
	}
}
