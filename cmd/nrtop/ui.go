// Frame rendering: one pure function from two polls (current and previous)
// to a text frame, so the dashboard is unit-testable without a terminal.
// The payload structs reuse the library's own JSON-tagged types — the
// dashboard cannot drift from the /metrics schema without failing to build.
package main

import (
	"fmt"
	"strings"
	"time"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/miniredis"
	"github.com/asplos17/nr/internal/obs/tsdb"
)

// payload mirrors the /metrics JSON body.
type payload struct {
	Server     miniredis.ServerStats `json:"server"`
	NR         *core.Metrics         `json:"nr"`
	ShardStats []core.Stats          `json:"shard_stats"`
	Telemetry  *telemetryPayload     `json:"telemetry"`
}

// telemetryPayload mirrors the windowed-telemetry slice of the body.
type telemetryPayload struct {
	IntervalSeconds float64          `json:"interval_seconds"`
	Windows         []tsdb.Window    `json:"windows"`
	SLOs            []tsdb.SLOStatus `json:"slos"`
}

// render builds one frame. prev is the previous poll (nil on the first
// frame); sincePrev the wall time between the polls, used for client-side
// rates (per-shard throughput, and everything else when the server has no
// telemetry collector).
func render(cur, prev *payload, sincePrev time.Duration) string {
	var b strings.Builder

	up := time.Duration(cur.Server.UptimeSeconds * float64(time.Second)).Round(time.Second)
	fmt.Fprintf(&b, "nrtop · up %s · clients %d · conns %d · cmds %s\n",
		up, cur.Server.ConnectedClients, cur.Server.TotalConnections,
		fmtCount(float64(cur.Server.TotalCommands)))

	if cur.NR == nil {
		b.WriteString("\n  (no NR metrics: baseline method, nothing to show)\n")
		return b.String()
	}

	var last *tsdb.Window
	if t := cur.Telemetry; t != nil && len(t.Windows) > 0 {
		last = &t.Windows[len(t.Windows)-1]
	}

	switch {
	case last != nil:
		fmt.Fprintf(&b, "\nTHROUGHPUT  ops/s %-8s read/s %-8s upd/s %-8s combines/s %-8s\n",
			fmtCount(last.OpsPerSec), fmtCount(last.ReadOpsPerSec),
			fmtCount(last.UpdateOpsPerSec), fmtCount(last.CombinesPerSec))
		fmt.Fprintf(&b, "LATENCY     read p50 %-7s p99 %-7s p999 %-7s · upd p50 %-7s p99 %-7s p999 %-7s\n",
			fmtNs(last.ReadP50Ns), fmtNs(last.ReadP99Ns), fmtNs(last.ReadP999Ns),
			fmtNs(last.UpdateP50Ns), fmtNs(last.UpdateP99Ns), fmtNs(last.UpdateP999Ns))
		fmt.Fprintf(&b, "BATCH       mean %.1f  p50 %d  p99 %d   readers: refresh/s %s  acquires/s %s\n",
			last.BatchMean, last.BatchP50, last.BatchP99,
			fmtCount(last.ReaderRefreshPerSec), fmtCount(last.ReaderAcquiresPerSec))
		if sp := spark(opsSeries(cur.Telemetry.Windows)); sp != "" {
			fmt.Fprintf(&b, "HISTORY     %s  (ops/s, oldest→newest)\n", sp)
		}
	case prev != nil && prev.NR != nil && sincePrev > 0:
		// No server-side telemetry: client-side rates between polls.
		secs := sincePrev.Seconds()
		fmt.Fprintf(&b, "\nTHROUGHPUT  ops/s %-8s read/s %-8s upd/s %-8s  (client-side; run nrredis with -telemetry for windows)\n",
			fmtCount(crate(cur.NR.Stats.ReadOps+cur.NR.Stats.UpdateOps, prev.NR.Stats.ReadOps+prev.NR.Stats.UpdateOps, secs)),
			fmtCount(crate(cur.NR.Stats.ReadOps, prev.NR.Stats.ReadOps, secs)),
			fmtCount(crate(cur.NR.Stats.UpdateOps, prev.NR.Stats.UpdateOps, secs)))
	default:
		b.WriteString("\nTHROUGHPUT  (warming up)\n")
	}

	health := "ok"
	if cur.NR.Health.Poisoned {
		health = "POISONED"
	}
	fmt.Fprintf(&b, "LOG         occupancy %4.1f%%  tail %d  completed %d  health %s\n",
		cur.NR.Log.Occupancy*100, cur.NR.Log.Tail, cur.NR.Log.Completed, health)

	if len(cur.NR.Replicas) > 0 {
		b.WriteString("\nNODE   LAG        ACQUIRES    HANDLES")
		if last != nil {
			b.WriteString("   READ/S     UPD/S      BUSY")
		}
		b.WriteByte('\n')
		for _, r := range cur.NR.Replicas {
			fmt.Fprintf(&b, "%4d   %-10d %-11s %-7d", r.Node, r.CompletedLag,
				fmtCount(float64(r.ReaderAcquires)), r.Registered)
			if last != nil {
				for _, nw := range last.Nodes {
					if nw.Node == r.Node {
						fmt.Fprintf(&b, "   %-10s %-10s %4.0f%%",
							fmtCount(nw.ReadOpsPerSec), fmtCount(nw.UpdateOpsPerSec),
							nw.CombineBusyFrac*100)
						break
					}
				}
			}
			b.WriteByte('\n')
		}
	}

	if p := cur.NR.Persist; p != nil {
		fmt.Fprintf(&b, "\nWAL         durable lag %d  fsyncs %d", p.DurableLag, p.Fsyncs)
		if last != nil && last.HasWAL {
			fmt.Fprintf(&b, "  appends/s %s  fsyncs/s %s  fsync mean %s",
				fmtCount(last.WALAppendsPerSec), fmtCount(last.WALFsyncsPerSec),
				fmtNs(last.FsyncMeanNs))
		}
		b.WriteByte('\n')
	}

	if len(cur.ShardStats) > 1 {
		b.WriteString("\nSHARD  READ/S     UPD/S      COMBINED/BATCH\n")
		for i, s := range cur.ShardStats {
			var rps, ups float64
			if prev != nil && i < len(prev.ShardStats) && sincePrev > 0 {
				secs := sincePrev.Seconds()
				rps = crate(s.ReadOps, prev.ShardStats[i].ReadOps, secs)
				ups = crate(s.UpdateOps, prev.ShardStats[i].UpdateOps, secs)
			}
			batch := 0.0
			if s.Combines > 0 {
				batch = float64(s.CombinedOps) / float64(s.Combines)
			}
			fmt.Fprintf(&b, "%5d  %-10s %-10s %.1f\n", i, fmtCount(rps), fmtCount(ups), batch)
		}
	}

	if t := cur.Telemetry; t != nil && len(t.SLOs) > 0 {
		b.WriteString("\nSLO     CLASS   P99 TGT  P99 NOW  P999 TGT P999 NOW BURN   STATE\n")
		for _, s := range t.SLOs {
			state := "ok"
			if s.Breached {
				state = "BREACH"
			}
			fmt.Fprintf(&b, "        %-7s %-8s %-8s %-8s %-8s %-6.2f %s (%d/%d windows)\n",
				s.Class, fmtNs(uint64(s.P99Ns)), fmtNs(uint64(s.CurrentP99Ns)),
				fmtNs(uint64(s.P999Ns)), fmtNs(uint64(s.CurrentP999Ns)),
				s.BudgetBurn, state, s.BreachedWindows, s.TotalWindows)
		}
	}
	return b.String()
}

// crate is a client-side rate from two cumulative counts.
func crate(cur, prev uint64, secs float64) float64 {
	if secs <= 0 || cur < prev {
		return 0
	}
	return float64(cur-prev) / secs
}

// opsSeries extracts the ops/s series for the sparkline, most recent ~60.
func opsSeries(ws []tsdb.Window) []float64 {
	if len(ws) > 60 {
		ws = ws[len(ws)-60:]
	}
	out := make([]float64, len(ws))
	for i := range ws {
		out[i] = ws[i].OpsPerSec
	}
	return out
}

// spark renders a unicode sparkline scaled to the series' own max.
func spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[i])
	}
	return b.String()
}

// fmtCount renders a count or rate compactly: 999, 12.3k, 4.56M, 7.8G.
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// fmtNs renders nanoseconds with a natural unit: 850ns, 12.4µs, 3.1ms, 2.0s.
func fmtNs(ns uint64) string {
	v := float64(ns)
	switch {
	case ns == 0:
		return "-"
	case v < 1e3:
		return fmt.Sprintf("%dns", ns)
	case v < 1e6:
		return fmt.Sprintf("%.1fµs", v/1e3)
	case v < 1e9:
		return fmt.Sprintf("%.1fms", v/1e6)
	default:
		return fmt.Sprintf("%.2fs", v/1e9)
	}
}
