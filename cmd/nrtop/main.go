// Command nrtop is a live terminal dashboard for a running nrredis: it
// polls the /metrics JSON endpoint and renders per-window throughput,
// latency tails, combiner batch distribution, replica and WAL durability
// lag, per-shard throughput, and SLO status — top(1) for the NR plane, no
// dependencies beyond the standard library and an ANSI terminal.
//
// Usage:
//
//	nrredis -metrics 127.0.0.1:6390 &
//	nrtop -addr http://127.0.0.1:6390
//
// The windowed sections (latency, batch, ops/s sparkline, SLOs) come from
// the server-side telemetry collector (nrredis -telemetry, on by default);
// without it nrtop falls back to client-side rates derived from the
// cumulative counters between polls. Per-shard throughput is always
// client-side: /metrics exports per-shard cumulative counters and nrtop
// differentiates across polls.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:6390", "nrredis metrics base URL")
		interval = flag.Duration("interval", time.Second, "poll cadence")
		once     = flag.Bool("once", false, "render a single frame without ANSI control codes and exit")
		frames   = flag.Int("frames", 0, "exit after this many frames; 0 runs until interrupted")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	var prev *payload
	var prevAt time.Time
	n := 0
	for {
		cur, err := fetch(client, *addr)
		now := time.Now()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nrtop: %v\n", err)
			os.Exit(1)
		}
		frame := render(cur, prev, now.Sub(prevAt))
		if *once {
			fmt.Print(frame)
			return
		}
		// Home + clear-to-end redraw; avoids full-screen flicker.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		prev, prevAt = cur, now
		n++
		if *frames > 0 && n >= *frames {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch polls the JSON representation of /metrics.
func fetch(client *http.Client, base string) (*payload, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var p payload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, fmt.Errorf("decoding /metrics: %v", err)
	}
	return &p, nil
}
