package main

import (
	"strings"
	"testing"

	"github.com/asplos17/nr/internal/miniredis"
)

// TestValidateDurability pins the -appendonly startup guard: durable mode
// is NR-only and single-shard until the recovery format grows a
// cross-shard barrier (ROADMAP item 5). The error text is part of the
// operator surface — it names the missing mechanism, not just the flag.
func TestValidateDurability(t *testing.T) {
	cases := []struct {
		name    string
		method  string
		shards  int
		wantErr string // empty = accept
	}{
		{"nr single shard", miniredis.MethodNR, 1, ""},
		{"wrong method", "lock", 1, "-appendonly requires -method nr"},
		{"sharded", miniredis.MethodNR, 4, "cross-shard barrier"},
		{"sharded names count", miniredis.MethodNR, 8, "-shards 8"},
		{"wrong method beats shards", "lock", 4, "-appendonly requires -method nr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateDurability(tc.method, tc.shards)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateDurability(%q, %d) = %v, want nil", tc.method, tc.shards, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateDurability(%q, %d) = %v, want error containing %q", tc.method, tc.shards, err, tc.wantErr)
			}
		})
	}
}
