// Command nrredis serves a Redis-compatible subset (strings + sorted sets)
// over RESP, with the entire keyspace made concurrent by Node Replication
// or one of the paper's baseline methods.
//
// Usage:
//
//	nrredis -addr :6380 -method nr -workers 8 -nodes 4 -cores 14 -smt 2
//
// Then: redis-cli -p 6380 ZADD board 10 alice / ZRANK board alice / ...
// The INFO command reports serving and NR metrics in redis style.
//
// With -metrics ADDR an HTTP sidecar serves the same observability data:
//
//	/metrics      — the full JSON snapshot (server counters + NR metrics)
//	/health       — 200 while healthy, 503 once the keyspace is poisoned
//	/debug/vars   — expvar, with the snapshot published under "nrredis"
//	/debug/trace  — flight-recorder export: Chrome trace JSON for Perfetto,
//	                or ?format=text for the top-K slowest-ops report
//
// The flight recorder (-trace, on by default for -method nr) also powers
// the SLOWLOG GET/RESET/LEN command, whose entries are reconstructed
// per-operation spans rather than redis's command log.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	nr "github.com/asplos17/nr"
	"github.com/asplos17/nr/internal/miniredis"
	"github.com/asplos17/nr/internal/topology"
	"github.com/asplos17/nr/internal/trace"
)

// parseSLOSpec parses "p99" or "p99,p999" duration pairs for the -slo-*
// flags; a missing p999 leaves that bound unchecked.
func parseSLOSpec(spec string) (p99, p999 time.Duration, err error) {
	parts := strings.SplitN(spec, ",", 2)
	if p99, err = time.ParseDuration(parts[0]); err != nil || p99 <= 0 {
		return 0, 0, fmt.Errorf("bad p99 %q (want a positive duration)", parts[0])
	}
	if len(parts) == 2 {
		if p999, err = time.ParseDuration(parts[1]); err != nil || p999 <= 0 {
			return 0, 0, fmt.Errorf("bad p999 %q (want a positive duration)", parts[1])
		}
	}
	return p99, p999, nil
}

// validateDurability gates the -appendonly flag combinations at startup:
// durability is one WAL whose recovery generation covers ONE instance's
// log. A sharded deployment would need one WAL per shard plus a
// cross-shard recovery barrier — a generation record tying the shards'
// recovery cut points together so a crash between two shards' fsyncs
// cannot resurrect a keyspace no linearization ever produced. The recovery
// format does not record one yet (ROADMAP item 5); multi-log instances are
// refused one layer down (nr.WithLogs with persistence) for the same
// reason.
func validateDurability(method string, shards int) error {
	if method != miniredis.MethodNR {
		return fmt.Errorf("nrredis: -appendonly requires -method nr (got %q)", method)
	}
	if shards > 1 {
		return fmt.Errorf("nrredis: -appendonly supports a single shard (got -shards %d): "+
			"consistent recovery across %d WALs needs a cross-shard barrier the recovery format does not record yet (ROADMAP item 5)",
			shards, shards)
	}
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6380", "listen address")
		metrics = flag.String("metrics", "", "HTTP metrics address (e.g. 127.0.0.1:6390); empty disables")
		method  = flag.String("method", "nr", "concurrency method: nr, sl, rwl, fc, fc+")
		shards  = flag.Int("shards", 1, "hash-partition the keyspace over this many NR instances (nr method only)")
		workers = flag.Int("workers", 8, "worker threads servicing requests")
		nodes   = flag.Int("nodes", 4, "NUMA nodes in the software topology")
		cores   = flag.Int("cores", 14, "cores per node")
		smt     = flag.Int("smt", 2, "hardware threads per core")
		seed    = flag.Uint64("seed", 1, "replica determinism seed")
		batch   = flag.String("batch", "none", "combiner batching policy (nr method only): none, adaptive, or a fixed linger window duration (e.g. 100us)")

		appendOnly = flag.Bool("appendonly", false, "durable mode (nr method, 1 shard): append-only log + snapshots in -dir, recovered on start")
		dataDir    = flag.String("dir", "nrredis-data", "data directory for -appendonly state")

		telemetry  = flag.Duration("telemetry", time.Second, "windowed telemetry capture cadence (nr method only); 0 disables")
		telWindows = flag.Int("telemetry-windows", 120, "telemetry windows retained in the ring")
		sloRead    = flag.String("slo-read", "", "read-latency SLO as p99[,p999] durations, e.g. 500us,2ms; empty disables")
		sloUpdate  = flag.String("slo-update", "", "update-latency SLO as p99[,p999] durations; empty disables")

		traceOn    = flag.Bool("trace", true, "attach the flight recorder (nr method only): SLOWLOG + /debug/trace")
		traceSlots = flag.Int("trace-slots", 4096, "flight-recorder ring slots per thread (rounded to a power of two)")
		traceDump  = flag.String("trace-dump-dir", "", "directory for automatic black-box dumps on stall/panic/poison; empty disables")
		traceProf  = flag.Int("trace-pprof-rate", 0, "label every Nth op with pprof labels (nr_node, nr_op); 0 disables")
	)
	flag.Parse()

	topo := topology.New(*nodes, *cores, *smt)
	if *workers > topo.TotalThreads() {
		log.Fatalf("nrredis: %d workers exceed topology capacity %d", *workers, topo.TotalThreads())
	}
	var rec *trace.Recorder
	if *traceOn && *method == miniredis.MethodNR {
		rec = trace.New(trace.Config{
			RingSlots:         *traceSlots,
			DumpDir:           *traceDump,
			ProfileSampleRate: *traceProf,
		})
	}
	var batchOpts []nr.Option
	switch *batch {
	case "none", "":
	case "adaptive":
		batchOpts = append(batchOpts, nr.WithBatchPolicy(nr.BatchAdaptive()))
	default:
		d, err := time.ParseDuration(*batch)
		if err != nil || d <= 0 {
			log.Fatalf("nrredis: -batch must be none, adaptive, or a positive duration (got %q)", *batch)
		}
		batchOpts = append(batchOpts, nr.WithBatchPolicy(nr.BatchPolicy{MaxLinger: d}))
	}
	if len(batchOpts) > 0 && *method != miniredis.MethodNR {
		log.Fatalf("nrredis: -batch applies only to -method nr (got %q)", *method)
	}
	// Telemetry rides only on the NR method (like -trace, it is silently
	// absent for baselines, which have no NR instance to observe); explicit
	// SLO flags on a baseline are an error rather than a silent no-op.
	if *method == miniredis.MethodNR {
		if *telemetry > 0 {
			batchOpts = append(batchOpts, nr.WithTelemetry(*telemetry, *telWindows))
		}
		for _, s := range []struct {
			spec  string
			class nr.OpClass
			name  string
		}{{*sloRead, nr.OpRead, "-slo-read"}, {*sloUpdate, nr.OpUpdate, "-slo-update"}} {
			if s.spec == "" {
				continue
			}
			p99, p999, err := parseSLOSpec(s.spec)
			if err != nil {
				log.Fatalf("nrredis: %s: %v", s.name, err)
			}
			batchOpts = append(batchOpts, nr.WithSLO(s.class, p99, p999))
		}
	} else if *sloRead != "" || *sloUpdate != "" {
		log.Fatalf("nrredis: -slo-read/-slo-update apply only to -method nr (got %q)", *method)
	}
	var shared miniredis.Shared
	var persist *miniredis.Persistence
	var err error
	switch {
	case *appendOnly:
		if err := validateDurability(*method, *shards); err != nil {
			log.Fatal(err)
		}
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("nrredis: creating -dir: %v", err)
		}
		shared, persist, err = miniredis.NewPersistentShared(topo, *seed, *dataDir, rec, batchOpts...)
		if err == nil {
			log.Printf("nrredis: durable keyspace in %s (replayed %d ops, dropped %d)",
				*dataDir, persist.Recovered.Replayed, persist.Recovered.Dropped)
		}
	case *shards > 1:
		if *method != miniredis.MethodNR {
			log.Fatalf("nrredis: -shards applies only to -method nr (got %q)", *method)
		}
		shared, err = miniredis.NewShardedShared(topo, *seed, *shards, rec, batchOpts...)
	default:
		shared, err = miniredis.NewSharedTraced(*method, topo, *seed, rec, batchOpts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	srvOpts := []miniredis.ServerOption{miniredis.WithRecorder(rec)}
	if persist != nil {
		srvOpts = append(srvOpts, miniredis.WithPersistence(persist))
	}
	srv, err := miniredis.NewServer(shared, *workers, srvOpts...)
	if err != nil {
		log.Fatal(err)
	}

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.Handle("/health", srv.HealthHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/debug/trace", srv.TraceHandler())
		// The expvar snapshot deliberately excludes the flight recorder:
		// its rings are thousands of events per thread, far too large for a
		// dump that monitoring systems poll; trace data is served only by
		// /debug/trace on demand.
		expvar.Publish("nrredis", expvar.Func(func() any {
			stats := srv.ServerStats()
			if m, ok := srv.Metrics(); ok {
				return map[string]any{"server": stats, "nr": m}
			}
			return map[string]any{"server": stats}
		}))
		go func() {
			log.Printf("nrredis: metrics on http://%s/metrics", *metrics)
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("nrredis: metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "nrredis: shutting down")
		srv.Close()
		if persist != nil {
			persist.Close() // final WAL fsync; a clean shutdown loses nothing
		}
	}()

	log.Printf("nrredis: method=%s shards=%d workers=%d topology=%s", *method, *shards, *workers, topo)
	if err := srv.Serve(*addr, func(a net.Addr) { log.Printf("nrredis: listening on %s", a) }); err != nil {
		log.Fatal(err)
	}
}
