// Command nrredis serves a Redis-compatible subset (strings + sorted sets)
// over RESP, with the entire keyspace made concurrent by Node Replication
// or one of the paper's baseline methods.
//
// Usage:
//
//	nrredis -addr :6380 -method nr -workers 8 -nodes 4 -cores 14 -smt 2
//
// Then: redis-cli -p 6380 ZADD board 10 alice / ZRANK board alice / ...
// The INFO command reports serving and NR metrics in redis style.
//
// With -metrics ADDR an HTTP sidecar serves the same observability data:
//
//	/metrics     — the full JSON snapshot (server counters + NR metrics)
//	/health      — 200 while healthy, 503 once the keyspace is poisoned
//	/debug/vars  — expvar, with the snapshot published under "nrredis"
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"github.com/asplos17/nr/internal/miniredis"
	"github.com/asplos17/nr/internal/topology"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6380", "listen address")
		metrics = flag.String("metrics", "", "HTTP metrics address (e.g. 127.0.0.1:6390); empty disables")
		method  = flag.String("method", "nr", "concurrency method: nr, sl, rwl, fc, fc+")
		workers = flag.Int("workers", 8, "worker threads servicing requests")
		nodes   = flag.Int("nodes", 4, "NUMA nodes in the software topology")
		cores   = flag.Int("cores", 14, "cores per node")
		smt     = flag.Int("smt", 2, "hardware threads per core")
		seed    = flag.Uint64("seed", 1, "replica determinism seed")
	)
	flag.Parse()

	topo := topology.New(*nodes, *cores, *smt)
	if *workers > topo.TotalThreads() {
		log.Fatalf("nrredis: %d workers exceed topology capacity %d", *workers, topo.TotalThreads())
	}
	shared, err := miniredis.NewShared(*method, topo, *seed)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := miniredis.NewServer(shared, *workers)
	if err != nil {
		log.Fatal(err)
	}

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.Handle("/health", srv.HealthHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		expvar.Publish("nrredis", expvar.Func(func() any {
			stats := srv.ServerStats()
			if m, ok := srv.Metrics(); ok {
				return map[string]any{"server": stats, "nr": m}
			}
			return map[string]any{"server": stats}
		}))
		go func() {
			log.Printf("nrredis: metrics on http://%s/metrics", *metrics)
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("nrredis: metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "nrredis: shutting down")
		srv.Close()
	}()

	log.Printf("nrredis: method=%s workers=%d topology=%s", *method, *workers, topo)
	if err := srv.Serve(*addr, func(a net.Addr) { log.Printf("nrredis: listening on %s", a) }); err != nil {
		log.Fatal(err)
	}
}
