// Command nrredis-bench is a redis-benchmark-style load generator for
// nrredis (or any RESP server): it drives the §8.3 macro-benchmark over the
// wire — a single sorted set, ZRANK reads and ZINCRBY updates in a YCSB
// mix — and reports throughput plus a latency distribution.
//
// Usage:
//
//	nrredis-bench -addr 127.0.0.1:6380 -clients 16 -requests 100000 -update 0.1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/asplos17/nr/internal/histogram"
	"github.com/asplos17/nr/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:6380", "server address")
		clients  = flag.Int("clients", 16, "concurrent connections")
		requests = flag.Int("requests", 100000, "total requests")
		update   = flag.Float64("update", 0.1, "fraction of ZINCRBY updates (rest ZRANK)")
		items    = flag.Int("items", 10000, "sorted-set size to preload")
		key      = flag.String("key", "bench:zset", "sorted-set key")
	)
	flag.Parse()
	if *clients < 1 || *requests < 1 || *update < 0 || *update > 1 {
		flag.Usage()
		os.Exit(2)
	}

	members := make([]string, *items)
	for i := range members {
		members[i] = fmt.Sprintf("item:%06d", i)
	}

	// Preload on one connection.
	pre, err := dial(*addr)
	if err != nil {
		log.Fatalf("nrredis-bench: connect: %v", err)
	}
	for i, m := range members {
		if _, err := pre.do("ZADD", *key, fmt.Sprint(i), m); err != nil {
			log.Fatalf("nrredis-bench: preload: %v", err)
		}
	}
	pre.close()
	log.Printf("preloaded %d members into %s", *items, *key)

	perClient := *requests / *clients
	hists := make([]*histogram.Histogram, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	errs := make(chan error, *clients)
	for c := 0; c < *clients; c++ {
		hists[c] = histogram.New()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := dial(*addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.close()
			rng := workload.NewRNG(uint64(c)*0x9e3779b97f4a7c15 + 1)
			updPermille := int(*update * 1000)
			for i := 0; i < perClient; i++ {
				m := members[rng.Intn(len(members))]
				t0 := time.Now()
				if rng.Intn(1000) < updPermille {
					_, err = conn.do("ZINCRBY", *key, "1", m)
				} else {
					_, err = conn.do("ZRANK", *key, m)
				}
				if err != nil {
					errs <- err
					return
				}
				hists[c].Record(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		log.Fatalf("nrredis-bench: %v", err)
	}

	total := histogram.New()
	for _, h := range hists {
		total.Merge(h)
	}
	done := total.Count()
	fmt.Printf("requests: %d in %s\n", done, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f req/s (%.3f ops/us)\n",
		float64(done)/elapsed.Seconds(), float64(done)/float64(elapsed.Nanoseconds())*1000)
	fmt.Printf("latency: %s\n", total.Summary())
}

// client is a minimal blocking RESP client.
type client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dial(addr string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

func (c *client) close() { c.conn.Close() }

// do issues one command and returns the raw first reply line (bulk bodies
// are consumed but not returned; the benchmark only needs completion).
func (c *client) do(args ...string) (string, error) {
	fmt.Fprintf(c.w, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(c.w, "$%d\r\n%s\r\n", len(a), a)
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	return c.readReply()
}

func (c *client) readReply() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return "", fmt.Errorf("empty reply")
	}
	switch line[0] {
	case '+', ':':
		return line, nil
	case '-':
		return "", fmt.Errorf("server error: %s", line[1:])
	case '$':
		if line == "$-1" {
			return line, nil
		}
		if _, err := c.r.ReadString('\n'); err != nil {
			return "", err
		}
		return line, nil
	case '*':
		var n int
		fmt.Sscanf(line, "*%d", &n)
		for i := 0; i < n; i++ {
			if _, err := c.readReply(); err != nil {
				return "", err
			}
		}
		return line, nil
	}
	return "", fmt.Errorf("unexpected reply %q", line)
}
