// Command lincheck runs randomized linearizability validation of NR (and,
// for comparison, the baseline methods) against sequential models: many
// short concurrent histories are recorded on a real concurrent execution
// and checked with a Wing&Gong-style checker.
//
// Usage:
//
//	lincheck -structure counter -rounds 200 -threads 4 -ops 12
//	lincheck -structure dict -method nr -ablation readwaitlogtail
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"

	"github.com/asplos17/nr/internal/core"
	"github.com/asplos17/nr/internal/ds"
	"github.com/asplos17/nr/internal/linearize"
	"github.com/asplos17/nr/internal/topology"
)

type counter struct{ v uint64 }

func (c *counter) Execute(inc bool) uint64 {
	if inc {
		c.v++
	}
	return c.v
}
func (c *counter) IsReadOnly(inc bool) bool { return !inc }

func main() {
	var (
		structure = flag.String("structure", "counter", "counter, dict, or stack")
		rounds    = flag.Int("rounds", 200, "independent histories to record and check")
		threads   = flag.Int("threads", 4, "concurrent threads per history")
		opsPer    = flag.Int("ops", 10, "operations per thread per history")
		ablation  = flag.String("ablation", "", "none, disablecombining, readwaitlogtail, combinedreplicalock, serialreplicaupdate, centralizedreaderlock")
		seed      = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	opts := core.Options{Topology: topology.New(2, (*threads+1)/2, 1), LogEntries: 1 << 12}
	switch *ablation {
	case "", "none":
	case "disablecombining":
		opts.DisableCombining = true
	case "readwaitlogtail":
		opts.ReadWaitLogTail = true
	case "combinedreplicalock":
		opts.CombinedReplicaLock = true
	case "serialreplicaupdate":
		opts.SerialReplicaUpdate = true
	case "centralizedreaderlock":
		opts.CentralizedReaderLock = true
	default:
		log.Fatalf("lincheck: unknown ablation %q", *ablation)
	}

	failures := 0
	for round := 0; round < *rounds; round++ {
		ok := false
		switch *structure {
		case "counter":
			ok = checkCounter(opts, *threads, *opsPer, *seed+int64(round))
		case "dict":
			ok = checkDict(opts, *threads, *opsPer, *seed+int64(round))
		case "stack":
			ok = checkStack(opts, *threads, *opsPer, *seed+int64(round))
		default:
			log.Fatalf("lincheck: unknown structure %q", *structure)
		}
		if !ok {
			failures++
			fmt.Printf("round %d: NOT LINEARIZABLE\n", round)
		}
	}
	fmt.Printf("lincheck: %d rounds, %d failures (structure=%s ablation=%s threads=%d ops=%d)\n",
		*rounds, failures, *structure, *ablation, *threads, *opsPer)
	if failures > 0 {
		os.Exit(1)
	}
}

func checkCounter(opts core.Options, threads, opsPer int, seed int64) bool {
	inst, err := core.New[bool, uint64](
		func() core.Sequential[bool, uint64] { return &counter{} }, opts)
	if err != nil {
		log.Fatal(err)
	}
	rec := linearize.NewRecorder(threads)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		h, err := inst.Register()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *core.Handle[bool, uint64]) {
			defer wg.Done()
			cl := rec.Client(g)
			rng := uint64(seed)<<8 | uint64(g) | 1
			for i := 0; i < opsPer; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				inc := rng%2 == 0
				call := cl.Invoke()
				out := h.Execute(inc)
				cl.Complete(call, linearize.RegisterIn{Inc: inc}, out)
			}
		}(g, h)
	}
	wg.Wait()
	return linearize.Check(linearize.CounterModel(), rec.History())
}

func checkDict(opts core.Options, threads, opsPer int, seed int64) bool {
	inst, err := core.New[ds.DictOp, ds.DictResult](
		func() core.Sequential[ds.DictOp, ds.DictResult] { return ds.NewSkipListDict(99) }, opts)
	if err != nil {
		log.Fatal(err)
	}
	rec := linearize.NewRecorder(threads)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		h, err := inst.Register()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *core.Handle[ds.DictOp, ds.DictResult]) {
			defer wg.Done()
			cl := rec.Client(g)
			rng := uint64(seed)<<8 | uint64(g) | 1
			for i := 0; i < opsPer; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				key := int64(rng % 3) // tiny key space maximizes interference
				var op ds.DictOp
				var in linearize.DictIn
				switch rng % 3 {
				case 0:
					op = ds.DictOp{Kind: ds.DictInsert, Key: key, Value: rng}
					in = linearize.DictIn{Kind: 'i', Key: key, Val: rng}
				case 1:
					op = ds.DictOp{Kind: ds.DictDelete, Key: key}
					in = linearize.DictIn{Kind: 'd', Key: key}
				case 2:
					op = ds.DictOp{Kind: ds.DictLookup, Key: key}
					in = linearize.DictIn{Kind: 'l', Key: key}
				}
				call := cl.Invoke()
				out := h.Execute(op)
				cl.Complete(call, in, linearize.DictOut{Val: out.Value, OK: out.OK})
			}
		}(g, h)
	}
	wg.Wait()
	return linearize.Check(linearize.DictModel(), rec.History())
}

func checkStack(opts core.Options, threads, opsPer int, seed int64) bool {
	inst, err := core.New[ds.StackOp, ds.StackResult](
		func() core.Sequential[ds.StackOp, ds.StackResult] { return ds.NewSeqStack(0) }, opts)
	if err != nil {
		log.Fatal(err)
	}
	rec := linearize.NewRecorder(threads)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		h, err := inst.Register()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *core.Handle[ds.StackOp, ds.StackResult]) {
			defer wg.Done()
			cl := rec.Client(g)
			rng := uint64(seed)<<8 | uint64(g) | 1
			for i := 0; i < opsPer; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if rng%2 == 0 {
					v := int64(rng % 1000)
					call := cl.Invoke()
					out := h.Execute(ds.StackOp{Kind: ds.StackPush, Value: v})
					cl.Complete(call, linearize.StackIn{Push: true, Val: v},
						linearize.StackOut{Val: out.Value, OK: out.OK})
				} else {
					call := cl.Invoke()
					out := h.Execute(ds.StackOp{Kind: ds.StackPop})
					cl.Complete(call, linearize.StackIn{},
						linearize.StackOut{Val: out.Value, OK: out.OK})
				}
			}
		}(g, h)
	}
	wg.Wait()
	return linearize.Check(linearize.StackModel(), rec.History())
}
