// Command nrlint runs the NR-specific static analyzers (internal/analysis)
// over package directories:
//
//	nrlint [-only cachepad,noalloc] ./...
//
// Patterns are directories; a trailing /... walks recursively (testdata,
// vendor, and dot-directories are skipped, as the go tool does). With no
// patterns, ./... is assumed.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 a package failed to load.
package main

import (
	"errors"
	"flag"
	"fmt"
	"go/build"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/asplos17/nr/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nrlint [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "nrlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nrlint: %v\n", err)
		os.Exit(2)
	}

	loader := analysis.NewLoader()
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			fmt.Fprintf(os.Stderr, "nrlint: %v\n", err)
			exit = 2
			continue
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nrlint: %s: %v\n", pkg.PkgPath, err)
			exit = 2
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			if exit == 0 {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

// expand resolves directory patterns, walking recursively for /... suffixes.
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		if !recursive {
			add(filepath.Clean(pat))
			continue
		}
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// isNoGo reports whether err is the "no buildable Go files" condition for a
// directory that simply holds no package.
func isNoGo(err error) bool {
	var noGo *build.NoGoError
	return errors.As(err, &noGo)
}
