// Command nrlint runs the NR-specific static analyzers (internal/analysis)
// over package directories:
//
//	nrlint [-only cachepad,noalloc] [-v] [-json] [-sarif out.sarif] ./...
//
// Patterns are directories; a trailing /... walks recursively (testdata,
// vendor, and dot-directories are skipped, as the go tool does). With no
// patterns, ./... is assumed.
//
// Loading is serial (packages type-check against each other and share the
// loader's cache); analysis is parallel per package, which is safe because
// the module-wide call graph is built once up front and the analyzers'
// lazily-computed global facts are mutex-guarded. -v prints per-analyzer
// wall-clock totals. -json writes diagnostics as a JSON array to stdout
// instead of text; -sarif additionally writes a SARIF 2.1.0 log to the given
// file ("-" for stdout) for code-scanning upload.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 a package failed to load.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/build"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/asplos17/nr/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	verbose := flag.Bool("v", false, "print per-analyzer timing totals to stderr")
	jsonOut := flag.Bool("json", false, "write diagnostics as a JSON array to stdout")
	sarifOut := flag.String("sarif", "", "write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nrlint [-only names] [-v] [-json] [-sarif file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "nrlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nrlint: %v\n", err)
		os.Exit(2)
	}

	// Phase 1: serial load. Later packages type-check against earlier ones
	// through the loader's cache, so this cannot be parallelized naively —
	// and it is dominated by the first package's dependency closure anyway.
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			fmt.Fprintf(os.Stderr, "nrlint: %v\n", err)
			exit = 2
			continue
		}
		pkgs = append(pkgs, pkg)
	}

	// Phase 2: parallel per-package analysis. Warm the module-wide call
	// graph once so workers only read it.
	if len(pkgs) > 0 {
		loader.Graph()
	}
	type result struct {
		pkg   *analysis.Package
		diags []analysis.Diagnostic
		err   error
	}
	results := make([]result, len(pkgs))
	timings := make([]map[string]time.Duration, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *analysis.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if *verbose {
				// Per-analyzer runs so each one's cost is attributable.
				t := make(map[string]time.Duration, len(analyzers))
				var all []analysis.Diagnostic
				for _, a := range analyzers {
					start := time.Now()
					diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
					t[a.Name] += time.Since(start)
					if err != nil {
						results[i] = result{pkg: pkg, err: err}
						return
					}
					all = append(all, diags...)
				}
				sortDiags(pkg.Fset, all)
				results[i] = result{pkg: pkg, diags: all}
				timings[i] = t
				return
			}
			diags, err := analysis.Run(pkg, analyzers)
			results[i] = result{pkg: pkg, diags: diags, err: err}
		}(i, pkg)
	}
	wg.Wait()

	var flat []flatDiag
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "nrlint: %s: %v\n", r.pkg.PkgPath, r.err)
			exit = 2
			continue
		}
		for _, d := range r.diags {
			p := r.pkg.Fset.Position(d.Pos)
			flat = append(flat, flatDiag{
				File: p.Filename, Line: p.Line, Column: p.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
			if exit == 0 {
				exit = 1
			}
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if flat == nil {
			flat = []flatDiag{}
		}
		if err := enc.Encode(flat); err != nil {
			fmt.Fprintf(os.Stderr, "nrlint: %v\n", err)
			exit = 2
		}
	default:
		for _, d := range flat {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Column, d.Message, d.Analyzer)
		}
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, analyzers, flat); err != nil {
			fmt.Fprintf(os.Stderr, "nrlint: %v\n", err)
			exit = 2
		}
	}

	if *verbose {
		totals := make(map[string]time.Duration)
		for _, t := range timings {
			for name, d := range t {
				totals[name] += d
			}
		}
		names := make([]string, 0, len(totals))
		for name := range totals {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return totals[names[i]] > totals[names[j]] })
		fmt.Fprintf(os.Stderr, "nrlint: %d packages, %d diagnostics\n", len(pkgs), len(flat))
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "  %-10s %v\n", name, totals[name].Round(time.Millisecond))
		}
	}
	os.Exit(exit)
}

// flatDiag is one diagnostic in the machine-readable outputs.
type flatDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// sortDiags restores source order after per-analyzer runs interleave.
func sortDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// SARIF 2.1.0 — the minimal subset code-scanning uploads need.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string      `json:"id"`
	ShortDescription sarifText   `json:"shortDescription"`
	Help             *sarifText  `json:"help,omitempty"`
	Properties       *sarifProps `json:"properties,omitempty"`
}

type sarifProps struct {
	Tags []string `json:"tags,omitempty"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(path string, analyzers []*analysis.Analyzer, diags []flatDiag) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
			Properties:       &sarifProps{Tags: []string{"concurrency", "nr"}},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	wd, _ := os.Getwd()
	for _, d := range diags {
		uri := d.File
		if wd != "" {
			if rel, err := filepath.Rel(wd, d.File); err == nil && !strings.HasPrefix(rel, "..") {
				uri = filepath.ToSlash(rel)
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: uri},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "nrlint", Rules: rules}}, Results: results}},
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// expand resolves directory patterns, walking recursively for /... suffixes.
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		if !recursive {
			add(filepath.Clean(pat))
			continue
		}
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// isNoGo reports whether err is the "no buildable Go files" condition for a
// directory that simply holds no package.
func isNoGo(err error) bool {
	var noGo *build.NoGoError
	return errors.As(err, &noGo)
}
